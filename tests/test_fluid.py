"""Fluid flow-table tests: proportional sharing, contention, completion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.resources import DEFAULT_MODEL
from repro.sim.fluid import FluidConfig, FlowSpec, FlowTable


def make_table(num_machines=2, sigma=0.25, **overrides):
    caps = [
        DEFAULT_MODEL.vector(
            cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125
        ).data
        for _ in range(num_machines)
    ]
    config = FluidConfig(contention_sigma=sigma, **overrides)
    return FlowTable(DEFAULT_MODEL, caps, config)


class TestFluidConfig:
    def test_cpu_sigma_defaults_to_zero(self):
        cfg = FluidConfig(contention_sigma=0.25)
        assert cfg.sigma_for("cpu") == 0.0
        assert cfg.sigma_for("diskr") == 0.25

    def test_overrides(self):
        cfg = FluidConfig(
            contention_sigma=0.25, sigma_overrides={"cpu": 0.5, "diskr": 0.0}
        )
        assert cfg.sigma_for("cpu") == 0.5
        assert cfg.sigma_for("diskr") == 0.0
        assert cfg.sigma_for("netin") == 0.25


class TestRegistration:
    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            make_table().add_flow(FlowSpec(work=0, nominal_rate=1))

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            make_table().add_flow(FlowSpec(work=1, nominal_rate=0))

    def test_non_fluid_dim_rejected(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.add_flow(
                FlowSpec(work=1, nominal_rate=1, slots=((0, "mem"),))
            )

    def test_machine_out_of_range_rejected(self):
        table = make_table(num_machines=1)
        with pytest.raises(ValueError):
            table.add_flow(
                FlowSpec(work=1, nominal_rate=1, slots=((5, "diskr"),))
            )

    def test_growth_beyond_initial_capacity(self):
        table = make_table()
        ids = [
            table.add_flow(FlowSpec(work=100, nominal_rate=1))
            for _ in range(200)
        ]
        assert table.num_active == 200
        assert len(set(ids)) == 200

    def test_remove_flow(self):
        table = make_table()
        fid = table.add_flow(FlowSpec(work=10, nominal_rate=1))
        table.remove_flow(fid)
        assert table.num_active == 0
        with pytest.raises(ValueError):
            table.remove_flow(fid)


class TestRates:
    def test_uncontended_flow_runs_at_nominal(self):
        table = make_table()
        fid = table.add_flow(
            FlowSpec(work=100, nominal_rate=50, slots=((0, "diskr"),))
        )
        assert table.current_rate(fid) == pytest.approx(50)

    def test_proportional_share_without_penalty(self):
        table = make_table(sigma=0.0)
        f1 = table.add_flow(
            FlowSpec(work=1000, nominal_rate=150, slots=((0, "diskr"),))
        )
        f2 = table.add_flow(
            FlowSpec(work=1000, nominal_rate=150, slots=((0, "diskr"),))
        )
        # demand 300 on a 200 MB/s disk -> each gets 100
        assert table.current_rate(f1) == pytest.approx(100)
        assert table.current_rate(f2) == pytest.approx(100)

    def test_contention_penalty_lowers_aggregate_throughput(self):
        table = make_table(sigma=0.25)
        for _ in range(2):
            table.add_flow(
                FlowSpec(work=1000, nominal_rate=200, slots=((0, "diskr"),))
            )
        throughput = table.slot_throughput().sum()
        # ratio 2.0: aggregate = 200 / (1 + 0.25) = 160 < 200
        assert throughput == pytest.approx(200 / 1.25)

    def test_cpu_timeshares_losslessly(self):
        table = make_table(sigma=0.25)
        for _ in range(2):
            table.add_flow(
                FlowSpec(work=100, nominal_rate=16, slots=((0, "cpu"),))
            )
        # 32 cores demanded on 16: each runs at 8, aggregate stays 16
        throughput = table.slot_throughput()[0][0]
        assert throughput == pytest.approx(16.0)

    def test_multi_slot_flow_limited_by_worst_slot(self):
        table = make_table(sigma=0.0)
        # saturate source netout with a competing flow
        table.add_flow(
            FlowSpec(work=1000, nominal_rate=125, slots=((0, "netout"),))
        )
        remote = table.add_flow(
            FlowSpec(
                work=1000,
                nominal_rate=125,
                slots=((0, "diskr"), (0, "netout"), (1, "netin")),
            )
        )
        # netout has 250 demanded on 125 -> half rate
        assert table.current_rate(remote) == pytest.approx(62.5)

    def test_fixed_flow_ignores_contention(self):
        table = make_table()
        fid = table.add_flow(
            FlowSpec(work=10, nominal_rate=999, slots=(), fixed=True)
        )
        assert table.current_rate(fid) == pytest.approx(999)


class TestAdvance:
    def test_completion_timing(self):
        table = make_table()
        table.add_flow(
            FlowSpec(work=100, nominal_rate=50, slots=((0, "diskr"),))
        )
        assert table.time_to_next_completion() == pytest.approx(2.0)
        completed = table.advance(2.0)
        assert len(completed) == 1
        assert table.num_active == 0

    def test_partial_progress(self):
        table = make_table()
        fid = table.add_flow(
            FlowSpec(work=100, nominal_rate=50, slots=((0, "diskr"),))
        )
        assert table.advance(1.0) == []
        assert table.remaining_work(fid) == pytest.approx(50)

    def test_rates_rebalance_after_completion(self):
        table = make_table(sigma=0.0)
        f1 = table.add_flow(
            FlowSpec(work=100, nominal_rate=200, slots=((0, "diskw"),))
        )
        f2 = table.add_flow(
            FlowSpec(work=1000, nominal_rate=200, slots=((0, "diskw"),))
        )
        dt = table.time_to_next_completion()
        assert dt == pytest.approx(1.0)  # each at 100 MB/s
        assert table.advance(dt) == [f1]
        assert table.current_rate(f2) == pytest.approx(200)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            make_table().advance(-1.0)

    def test_empty_table(self):
        table = make_table()
        assert table.time_to_next_completion() == float("inf")
        assert table.advance(10.0) == []

    def test_tags_returned_on_completion(self):
        table = make_table()
        table.add_flow(
            FlowSpec(work=10, nominal_rate=10, slots=((0, "diskr"),),
                     tag=("task", 7))
        )
        completed = table.advance(1.0)
        assert table.completed_tags(completed) == [("task", 7)]


class TestObservation:
    def test_slot_demand_shows_over_allocation(self):
        table = make_table()
        for _ in range(3):
            table.add_flow(
                FlowSpec(work=100, nominal_rate=100, slots=((0, "diskr"),))
            )
        demand = table.slot_demand()
        k = table.fluid_dim_names().index("diskr")
        assert demand[0][k] == pytest.approx(300)  # 1.5x capacity

    def test_throughput_capped_by_capacity(self):
        table = make_table(sigma=0.0)
        for _ in range(4):
            table.add_flow(
                FlowSpec(work=100, nominal_rate=100, slots=((0, "netin"),))
            )
        throughput = table.slot_throughput()
        k = table.fluid_dim_names().index("netin")
        assert throughput[0][k] == pytest.approx(125)


class TestFluidProperties:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=1000),   # work
                st.floats(min_value=1, max_value=300),    # rate
                st.integers(min_value=0, max_value=1),    # machine
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_throughput_never_exceeds_capacity(self, flows):
        table = make_table(sigma=0.25)
        for work, rate, machine in flows:
            table.add_flow(
                FlowSpec(work=work, nominal_rate=rate,
                         slots=((machine, "diskr"),))
            )
        throughput = table.slot_throughput()
        k = table.fluid_dim_names().index("diskr")
        assert (throughput[:, k] <= 200 + 1e-6).all()

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(
            st.one_of(
                # add a flow: (work, rate, machine, dim-kind, fixed?)
                st.tuples(
                    st.just("add"),
                    st.floats(min_value=1, max_value=1000),
                    st.floats(min_value=1, max_value=300),
                    st.integers(min_value=0, max_value=2),
                    st.integers(min_value=0, max_value=3),
                    st.booleans(),
                ),
                # remove the i-th oldest live flow
                st.tuples(st.just("remove"), st.integers(min_value=0)),
                # advance by a fraction of time-to-next-completion
                st.tuples(
                    st.just("advance"),
                    st.floats(min_value=0.0, max_value=1.5),
                ),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_sparse_rates_match_full_recompute(self, ops):
        """The tentpole invariant: after any randomized interleaving of
        add_flow/remove_flow/advance, the sparse-maintained rates equal
        the retained full-table oracle within 1e-9, and the heap-backed
        time_to_next_completion equals the oracle's full scan."""
        table = make_table(num_machines=3, sigma=0.25)
        live = []
        for op in ops:
            if op[0] == "add":
                _, work, rate, machine, kind, fixed = op
                if kind == 0:
                    slots = ((machine, "diskr"),)
                elif kind == 1:
                    slots = ((machine, "diskw"),)
                elif kind == 2:  # remote read across machines
                    dst = (machine + 1) % 3
                    slots = (
                        (machine, "diskr"),
                        (machine, "netout"),
                        (dst, "netin"),
                    )
                else:
                    slots = ()
                live.append(
                    table.add_flow(
                        FlowSpec(
                            work=work,
                            nominal_rate=rate,
                            slots=slots,
                            fixed=fixed or not slots,
                        )
                    )
                )
            elif op[0] == "remove":
                if live:
                    table.remove_flow(live.pop(op[1] % len(live)))
            else:
                dt = table.time_to_next_completion()
                if dt == float("inf"):
                    continue
                completed = set(table.advance(dt * op[1]))
                live = [fid for fid in live if fid not in completed]
            # the sparse path must agree with the oracle after every op
            table._recompute_rates()
            oracle = table.reference_rates()
            for fid in live:
                assert abs(table._rate[fid] - oracle[fid]) <= 1e-9
            expected = min(
                (
                    table._remaining[fid] / oracle[fid]
                    for fid in live
                    if oracle[fid] > 0
                ),
                default=float("inf"),
            )
            got = table.time_to_next_completion()
            if expected == float("inf"):
                assert got == float("inf")
            else:
                assert got == pytest.approx(expected, abs=1e-9)

    def test_sparse_recompute_is_local(self):
        """Adding a flow on machine 1 must not resum machine 0's slots."""
        table = make_table(num_machines=2, sigma=0.25)
        for _ in range(4):
            table.add_flow(
                FlowSpec(work=100, nominal_rate=150, slots=((0, "diskr"),))
            )
        table.time_to_next_completion()  # drain dirty set
        before = dict(table.stats)
        table.add_flow(
            FlowSpec(work=100, nominal_rate=150, slots=((1, "diskr"),))
        )
        table.time_to_next_completion()
        # one new dirty slot, one touched flow — not 5 flows / 2 slots
        assert table.stats["slots_recomputed"] - before["slots_recomputed"] == 1
        assert table.stats["flows_recomputed"] - before["flows_recomputed"] == 1

    def test_stats_and_metrics_registered(self):
        from repro.obs import Registry

        registry = Registry()
        table = make_table()
        table.use_metrics(registry)
        table.add_flow(
            FlowSpec(work=100, nominal_rate=50, slots=((0, "diskr"),))
        )
        table.advance(1.0)
        snap = registry.snapshot()
        assert snap["repro_fluid_sparse_recomputes_total"]["values"][""] >= 1
        assert snap["repro_fluid_flows_recomputed_total"]["values"][""] >= 1
        assert table.stats["sparse_recomputes"] >= 1

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1, max_value=500),
                st.floats(min_value=1, max_value=200),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_work_conservation(self, flows):
        """Advancing in many small steps completes every flow after the
        exact total work has been delivered."""
        table = make_table(sigma=0.0)
        total_work = 0.0
        for work, rate in flows:
            table.add_flow(
                FlowSpec(work=work, nominal_rate=rate,
                         slots=((0, "diskw"),))
            )
            total_work += work
        delivered = 0.0
        for _ in range(10_000):
            if table.num_active == 0:
                break
            k = table.fluid_dim_names().index("diskw")
            rate_now = table.slot_throughput()[0][k]
            dt = min(table.time_to_next_completion(), 1.0)
            table.advance(dt)
            delivered += rate_now * dt
        assert table.num_active == 0
        assert delivered == pytest.approx(total_work, rel=1e-3)
