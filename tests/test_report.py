"""Markdown report generator tests (small scale)."""

import pytest

from repro.experiments.report import _md_table, generate_report


class TestMdTable:
    def test_structure(self):
        lines = _md_table(["a", "b"], [["x", 1.25], ["y", 2.0]])
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| x | 1.2 |" in lines
        assert lines[-1] == ""


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("report") / "report.md"
        # a deliberately tiny run so this test stays fast
        import repro.experiments.report as report_mod
        from repro.workload.tracegen import WorkloadSuiteConfig

        original = report_mod.WorkloadSuiteConfig

        def tiny(**kwargs):
            kwargs.update(num_jobs=5, task_scale=0.02,
                          arrival_horizon=100)
            return original(**kwargs)

        report_mod.WorkloadSuiteConfig = tiny
        try:
            generate_report(path, quick=True, seed=3)
        finally:
            report_mod.WorkloadSuiteConfig = original
        return path.read_text()

    def test_sections_present(self, report_text):
        for heading in (
            "# Tetris reproduction report",
            "## Scheduler comparison",
            "## Tetris improvement per job",
            "## Fairness knob",
            "## Wastage from over-allocation",
            "## Upper bound (Section 2.3)",
        ):
            assert heading in report_text

    def test_all_schedulers_reported(self, report_text):
        for name in ("tetris", "slot-fair", "capacity", "drf"):
            assert name in report_text

    def test_tables_parse(self, report_text):
        table_lines = [
            line for line in report_text.splitlines()
            if line.startswith("|")
        ]
        assert len(table_lines) > 15
        # every table row has a consistent pipe structure
        for line in table_lines:
            assert line.endswith("|")
