"""Markdown report generator tests (small scale)."""

import pytest

from repro.experiments.report import _md_table, generate_report


@pytest.fixture
def tiny_workload(monkeypatch):
    """Shrink the report workload so report tests stay fast."""
    import repro.experiments.report as report_mod
    from repro.workload.tracegen import WorkloadSuiteConfig

    original = report_mod.WorkloadSuiteConfig

    def tiny(**kwargs):
        kwargs.update(num_jobs=5, task_scale=0.02, arrival_horizon=100)
        return original(**kwargs)

    monkeypatch.setattr(report_mod, "WorkloadSuiteConfig", tiny)


class TestMdTable:
    def test_structure(self):
        lines = _md_table(["a", "b"], [["x", 1.25], ["y", 2.0]])
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| x | 1.2 |" in lines
        assert lines[-1] == ""

    def test_integers_and_strings_pass_through(self):
        lines = _md_table(["n"], [[3], ["raw"]])
        assert "| 3 |" in lines
        assert "| raw |" in lines

    def test_empty_rows(self):
        lines = _md_table(["a"], [])
        assert lines == ["| a |", "|---|", ""]


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("report") / "report.md"
        # a deliberately tiny run so this test stays fast
        import repro.experiments.report as report_mod
        from repro.workload.tracegen import WorkloadSuiteConfig

        original = report_mod.WorkloadSuiteConfig

        def tiny(**kwargs):
            kwargs.update(num_jobs=5, task_scale=0.02,
                          arrival_horizon=100)
            return original(**kwargs)

        report_mod.WorkloadSuiteConfig = tiny
        try:
            generate_report(path, quick=True, seed=3)
        finally:
            report_mod.WorkloadSuiteConfig = original
        return path.read_text()

    def test_sections_present(self, report_text):
        for heading in (
            "# Tetris reproduction report",
            "## Scheduler comparison",
            "## Tetris improvement per job",
            "## Fairness knob",
            "## Wastage from over-allocation",
            "## Upper bound (Section 2.3)",
        ):
            assert heading in report_text

    def test_all_schedulers_reported(self, report_text):
        for name in ("tetris", "slot-fair", "capacity", "drf"):
            assert name in report_text

    def test_tables_parse(self, report_text):
        table_lines = [
            line for line in report_text.splitlines()
            if line.startswith("|")
        ]
        assert len(table_lines) > 15
        # every table row has a consistent pipe structure
        for line in table_lines:
            assert line.endswith("|")

    def test_workload_header_reflects_config(self, report_text):
        assert "5 jobs" in report_text
        assert "12 machines" in report_text
        assert "seed 3" in report_text

    def test_fairness_knob_rows_cover_all_knobs(self, report_text):
        from repro.experiments.report import KNOBS

        for knob in KNOBS:
            assert f"| {knob:.2f} |" in report_text

    def test_returns_the_written_path(self, tiny_workload, tmp_path):
        target = tmp_path / "out.md"
        path = generate_report(target, quick=True, seed=4)
        assert path == target
        assert target.exists()


class TestCmdReport:
    """The `repro report` CLI path over the same generator."""

    def test_cmd_report_writes_markdown(self, tiny_workload, tmp_path,
                                        capsys):
        from repro.cli import main

        out = tmp_path / "cli-report.md"
        rc = main(["report", "-o", str(out), "--seed", "3"])
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("# Tetris reproduction report")
        assert "## Upper bound (Section 2.3)" in text

    def test_cmd_report_seed_changes_workload(self, tiny_workload,
                                              tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "seeded.md"
        rc = main(["report", "-o", str(out), "--seed", "9"])
        assert rc == 0
        assert "seed 9" in out.read_text()
