"""Demand estimator and history tests (Section 4.1)."""

import numpy as np
import pytest

from repro.estimation.estimator import (
    NoisyEstimator,
    OracleEstimator,
    ProfilingEstimator,
)
from repro.estimation.history import StageStatistics, TemplateHistory
from repro.resources import DEFAULT_MODEL
from repro.workload.job import Job
from repro.workload.stage import Stage

from conftest import make_simple_job, make_task


class TestOracle:
    def test_returns_true_demands(self):
        task = make_task(cpu=3, mem=5)
        assert OracleEstimator().estimate(task) == task.demands


class TestNoisy:
    def test_consistent_per_task(self):
        est = NoisyEstimator(sigma=0.5, seed=1)
        task = make_task(cpu=2)
        assert est.estimate(task) == est.estimate(task)

    def test_noise_scales_all_dims_together(self):
        est = NoisyEstimator(sigma=0.5, seed=1)
        task = make_task(cpu=2, mem=4)
        v = est.estimate(task)
        assert v.get("mem") / v.get("cpu") == pytest.approx(2.0)

    def test_zero_sigma_is_oracle(self):
        est = NoisyEstimator(sigma=0.0)
        task = make_task(cpu=2)
        assert est.estimate(task) == task.demands

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoisyEstimator(sigma=-1)


class TestStageStatistics:
    def test_streaming_mean(self):
        stats = StageStatistics(DEFAULT_MODEL)
        stats.observe(DEFAULT_MODEL.vector(cpu=1))
        stats.observe(DEFAULT_MODEL.vector(cpu=3))
        assert stats.mean().get("cpu") == pytest.approx(2.0)
        assert stats.count == 2

    def test_std(self):
        stats = StageStatistics(DEFAULT_MODEL)
        for v in (1.0, 3.0):
            stats.observe(DEFAULT_MODEL.vector(cpu=v))
        assert stats.std().get("cpu") == pytest.approx(np.std([1, 3], ddof=1))

    def test_empty_stats(self):
        stats = StageStatistics(DEFAULT_MODEL)
        assert stats.mean() is None
        assert stats.std() is None
        assert stats.coefficient_of_variation() is None

    def test_cov(self):
        stats = StageStatistics(DEFAULT_MODEL)
        for v in (2.0, 2.0, 2.0):
            stats.observe(DEFAULT_MODEL.vector(cpu=v))
        cov = stats.coefficient_of_variation()
        assert cov[DEFAULT_MODEL.index["cpu"]] == pytest.approx(0.0)


class TestTemplateHistory:
    def test_keyed_on_template_and_stage(self):
        hist = TemplateHistory(DEFAULT_MODEL)
        hist.observe("tpl", "map", DEFAULT_MODEL.vector(cpu=2))
        hist.observe("tpl", "reduce", DEFAULT_MODEL.vector(cpu=8))
        assert hist.mean("tpl", "map").get("cpu") == 2
        assert hist.mean("tpl", "reduce").get("cpu") == 8
        assert hist.mean("other", "map") is None
        assert hist.count("tpl", "map") == 1
        assert len(hist) == 2


class TestProfilingEstimator:
    def _job_with_template(self):
        return make_simple_job(num_tasks=5, cpu=2, mem=4, template="tpl")

    def test_overestimates_without_information(self):
        est = ProfilingEstimator(overestimate_factor=1.5)
        task = make_task(cpu=2, mem=4)
        v = est.estimate(task)
        assert v.get("cpu") == pytest.approx(3.0)

    def test_default_guess_used_when_given(self):
        guess = DEFAULT_MODEL.vector(cpu=4, mem=8)
        est = ProfilingEstimator(default_guess=guess,
                                 overestimate_factor=2.0)
        assert est.estimate(make_task()).get("cpu") == 8.0

    def test_history_takes_priority(self):
        hist = TemplateHistory(DEFAULT_MODEL)
        hist.observe("tpl", "only", DEFAULT_MODEL.vector(cpu=7))
        est = ProfilingEstimator(history=hist)
        job = self._job_with_template()
        assert est.estimate(job.all_tasks()[0]).get("cpu") == 7.0

    def test_peer_statistics_after_min_samples(self):
        est = ProfilingEstimator(min_peer_samples=2)
        job = self._job_with_template()
        tasks = job.all_tasks()
        for task in tasks[:2]:
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
        v = est.estimate(tasks[4])
        assert v.get("cpu") == pytest.approx(2.0)  # peer mean, no inflation

    def test_record_completion_feeds_history(self):
        hist = TemplateHistory(DEFAULT_MODEL)
        est = ProfilingEstimator(history=hist)
        job = self._job_with_template()
        est.record_completion(job.all_tasks()[0])
        assert hist.count("tpl", "only") == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ProfilingEstimator(overestimate_factor=0.5)
