"""Heterogeneous-cluster tests: per-machine capacities end to end."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine
from repro.analysis.model import audit_engine

from conftest import make_simple_job, make_task


def big_and_small_cluster():
    """Two beefy machines and two small ones."""
    big = DEFAULT_MODEL.vector(cpu=32, mem=96, diskr=400, diskw=400,
                               netin=250, netout=250)
    small = DEFAULT_MODEL.vector(cpu=4, mem=8, diskr=50, diskw=50,
                                 netin=30, netout=30)
    return Cluster(
        4, machines_per_rack=2,
        machine_capacities=[big, big, small, small],
    )


class TestClusterConstruction:
    def test_capacity_list_length_checked(self):
        with pytest.raises(ValueError):
            Cluster(3, machine_capacities=[DEFAULT_MODEL.vector(cpu=1)])

    def test_per_machine_capacities(self):
        cluster = big_and_small_cluster()
        assert cluster.machine(0).capacity.get("cpu") == 32
        assert cluster.machine(3).capacity.get("cpu") == 4
        assert not cluster.is_homogeneous
        assert cluster.total_capacity().get("cpu") == 72

    def test_homogeneous_flag(self):
        assert Cluster(3).is_homogeneous


class TestSchedulingOnHeterogeneous:
    def test_large_task_lands_on_large_machine(self):
        cluster = big_and_small_cluster()
        job = make_simple_job(num_tasks=2, cpu=16, mem=32, cpu_work=32)
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        engine = Engine(cluster, scheduler, [job])
        engine.run()
        for task in job.all_tasks():
            assert task.machine_id in (0, 1)

    def test_small_machines_still_used(self):
        cluster = big_and_small_cluster()
        jobs = [make_simple_job(num_tasks=40, cpu=2, mem=2, cpu_work=20)]
        engine = Engine(cluster, TetrisScheduler(), jobs)
        engine.run()
        machines_used = {t.machine_id for t in jobs[0].all_tasks()}
        assert machines_used & {2, 3}

    def test_run_is_feasible(self):
        cluster = big_and_small_cluster()
        jobs = [
            make_simple_job(num_tasks=10, cpu=2, mem=4, cpu_work=10,
                            arrival_time=float(i))
            for i in range(3)
        ]
        engine = Engine(cluster, TetrisScheduler(), jobs)
        engine.run()
        report = audit_engine(engine)
        assert report.ok, report.violations[:3]

    def test_slot_counts_follow_machine_memory(self):
        cluster = big_and_small_cluster()
        scheduler = SlotFairScheduler(slot_mem_gb=2.0)
        scheduler.bind(cluster)
        assert scheduler.slots_of(cluster.machine(0)) == 48
        assert scheduler.slots_of(cluster.machine(2)) == 4
        assert scheduler.total_slots() == 48 + 48 + 4 + 4

    def test_slot_fair_runs_end_to_end(self):
        cluster = big_and_small_cluster()
        jobs = [make_simple_job(num_tasks=12, cpu=1, mem=2, cpu_work=5)]
        Engine(cluster, SlotFairScheduler(), jobs).run()
        assert jobs[0].is_finished

    def test_fluid_contention_respects_small_machine(self):
        """A disk flow on a small machine is limited by *its* 50 MB/s."""
        cluster = big_and_small_cluster()
        task = make_task(cpu=1, mem=1, diskw=50, write_mb=500, cpu_work=1)
        from repro.workload.job import Job
        from repro.workload.stage import Stage

        job = Job([Stage("w", [task])])
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        engine = Engine(cluster, scheduler, [job])
        engine.run()
        if task.machine_id in (2, 3):
            assert task.duration >= 10.0 - 1e-6  # 500 MB at <= 50 MB/s
