"""Event queue tests — both implementations must behave identically."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.events import ArrayEventQueue, EventKind, EventQueue

QUEUES = [EventQueue, ArrayEventQueue]


@pytest.mark.parametrize("queue_cls", QUEUES)
class TestEventQueue:
    def test_empty_peek_is_infinite(self, queue_cls):
        assert queue_cls().peek_time() == float("inf")

    def test_ordering(self, queue_cls):
        q = queue_cls()
        q.push(5.0, EventKind.WAKEUP, "b")
        q.push(1.0, EventKind.WAKEUP, "a")
        q.push(9.0, EventKind.WAKEUP, "c")
        assert q.peek_time() == 1.0
        events = q.pop_until(6.0)
        assert [e.payload for e in events] == ["a", "b"]
        assert len(q) == 1

    def test_ties_pop_in_push_order(self, queue_cls):
        q = queue_cls()
        q.push(2.0, EventKind.WAKEUP, "first")
        q.push(2.0, EventKind.WAKEUP, "second")
        events = q.pop_until(2.0)
        assert [e.payload for e in events] == ["first", "second"]

    def test_pop_until_respects_epsilon(self, queue_cls):
        q = queue_cls()
        q.push(1.0, EventKind.WAKEUP)
        assert len(q.pop_until(1.0 - 1e-13)) == 1

    def test_epsilon_scales_at_large_clock_values(self, queue_cls):
        # the old absolute 1e-12 epsilon fell below one ulp once the
        # clock passed ~1e4 simulated seconds, so an event one ulp after
        # the pop time (a float rounding artifact of an exact tie) was
        # silently left behind
        for t in (4e4, 1e6, 3e8):
            q = queue_cls()
            q.push(float(np.nextafter(t, np.inf)), EventKind.WAKEUP)
            assert len(q.pop_until(t)) == 1, f"ulp-tie missed at t={t}"

    def test_epsilon_does_not_pop_genuinely_later_events(self, queue_cls):
        q = queue_cls()
        q.push(4e4 + 1e-6, EventKind.WAKEUP)
        assert len(q.pop_until(4e4)) == 0
        q2 = queue_cls()
        q2.push(1.0 + 1e-9, EventKind.WAKEUP)
        assert len(q2.pop_until(1.0)) == 0

    def test_large_t_tie_ordering(self, queue_cls):
        # ulp-scale ties at a late simulated clock must pop together AND
        # in push order (seq breaks the tie deterministically)
        for t in (1e6, 1e7, 5e8):
            q = queue_cls()
            q.push(float(np.nextafter(t, np.inf)), EventKind.WAKEUP, "after")
            q.push(t, EventKind.WAKEUP, "exact")
            events = q.pop_until(t)
            # time order first, then push order within exact ties
            assert [e.payload for e in events] == ["exact", "after"]

    def test_large_t_relative_cutoff_boundary(self, queue_cls):
        # an event beyond the relative tolerance stays queued even when
        # the absolute gap is tiny compared to the clock
        t = 1e6
        gap = 10 * queue_cls.TIE_RTOL * t
        q = queue_cls()
        q.push(t + gap, EventKind.WAKEUP)
        assert len(q.pop_until(t)) == 0
        assert len(q.pop_until(t + gap)) == 1

    def test_negative_time_rejected(self, queue_cls):
        with pytest.raises(ValueError):
            queue_cls().push(-1.0, EventKind.WAKEUP)

    def test_bool(self, queue_cls):
        q = queue_cls()
        assert not q
        q.push(0.0, EventKind.WAKEUP)
        assert q

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_pop_order_is_sorted(self, queue_cls, times):
        q = queue_cls()
        for t in times:
            q.push(t, EventKind.WAKEUP)
        popped = [e.time for e in q.pop_until(float("inf"))]
        assert popped == sorted(times)

    def test_has_pending_filters_by_kind(self, queue_cls):
        q = queue_cls()
        assert not q.has_pending()
        assert not q.has_pending(EventKind.JOB_ARRIVAL)
        q.push(1.0, EventKind.TRACKER_REPORT)
        q.push(2.0, EventKind.JOB_ARRIVAL)
        assert q.has_pending()
        assert q.has_pending(EventKind.JOB_ARRIVAL)
        assert q.has_pending(
            EventKind.JOB_ARRIVAL, EventKind.ACTIVITY_START
        )
        assert not q.has_pending(EventKind.ACTIVITY_START)
        q.pop_until(2.0)
        assert not q.has_pending(EventKind.JOB_ARRIVAL)


class TestQueueEquivalence:
    """Both queues driven with identical traffic pop identical sequences."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9, allow_nan=False),
                st.sampled_from(list(EventKind)),
            ),
            max_size=60,
        ),
        st.lists(
            st.floats(min_value=0, max_value=2e9, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
    )
    def test_interleaved_pop_sequences_match(self, pushes, pop_times):
        ref, soa = EventQueue(), ArrayEventQueue()
        for t, kind in pushes:
            ref.push(t, kind, payload=(t, kind))
            soa.push(t, kind, payload=(t, kind))
        for pt in sorted(pop_times):
            a = ref.pop_until(pt)
            b = soa.pop_until(pt)
            assert [(e.time, e.seq, e.kind, e.payload) for e in a] == [
                (e.time, e.seq, e.kind, e.payload) for e in b
            ]
            assert ref.peek_time() == soa.peek_time()
            assert len(ref) == len(soa)

    def test_ulp_tie_storm_at_large_clock(self):
        # many near-identical times around t=1e6: pop order must match
        # exactly, including which events count as ties
        t = 1e6
        times = [t]
        for _ in range(5):
            times.append(float(np.nextafter(times[-1], np.inf)))
        times += [t + 1e-3, t - 1e-3]
        ref, soa = EventQueue(), ArrayEventQueue()
        for i, tt in enumerate(times):
            ref.push(tt, EventKind.WAKEUP, i)
            soa.push(tt, EventKind.WAKEUP, i)
        a = ref.pop_until(t)
        b = soa.pop_until(t)
        assert [e.payload for e in a] == [e.payload for e in b]
        # the ulp chain and the earlier event are ties, the +1e-3 is not
        assert len(a) == len(times) - 1
        assert len(ref) == len(soa) == 1
