"""Event queue tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventKind, EventQueue


class TestEventQueue:
    def test_empty_peek_is_infinite(self):
        assert EventQueue().peek_time() == float("inf")

    def test_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.WAKEUP, "b")
        q.push(1.0, EventKind.WAKEUP, "a")
        q.push(9.0, EventKind.WAKEUP, "c")
        assert q.peek_time() == 1.0
        events = q.pop_until(6.0)
        assert [e.payload for e in events] == ["a", "b"]
        assert len(q) == 1

    def test_ties_pop_in_push_order(self):
        q = EventQueue()
        q.push(2.0, EventKind.WAKEUP, "first")
        q.push(2.0, EventKind.WAKEUP, "second")
        events = q.pop_until(2.0)
        assert [e.payload for e in events] == ["first", "second"]

    def test_pop_until_respects_epsilon(self):
        q = EventQueue()
        q.push(1.0, EventKind.WAKEUP)
        assert len(q.pop_until(1.0 - 1e-13)) == 1

    def test_epsilon_scales_at_large_clock_values(self):
        # the old absolute 1e-12 epsilon fell below one ulp once the
        # clock passed ~1e4 simulated seconds, so an event one ulp after
        # the pop time (a float rounding artifact of an exact tie) was
        # silently left behind
        import numpy as np

        for t in (4e4, 1e6, 3e8):
            q = EventQueue()
            q.push(float(np.nextafter(t, np.inf)), EventKind.WAKEUP)
            assert len(q.pop_until(t)) == 1, f"ulp-tie missed at t={t}"

    def test_epsilon_does_not_pop_genuinely_later_events(self):
        q = EventQueue()
        q.push(4e4 + 1e-6, EventKind.WAKEUP)
        assert len(q.pop_until(4e4)) == 0
        q2 = EventQueue()
        q2.push(1.0 + 1e-9, EventKind.WAKEUP)
        assert len(q2.pop_until(1.0)) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.WAKEUP)

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.WAKEUP)
        assert q

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), max_size=50))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, EventKind.WAKEUP)
        popped = [e.time for e in q.pop_until(float("inf"))]
        assert popped == sorted(times)

    def test_has_pending_filters_by_kind(self):
        q = EventQueue()
        assert not q.has_pending()
        assert not q.has_pending(EventKind.JOB_ARRIVAL)
        q.push(1.0, EventKind.TRACKER_REPORT)
        q.push(2.0, EventKind.JOB_ARRIVAL)
        assert q.has_pending()
        assert q.has_pending(EventKind.JOB_ARRIVAL)
        assert q.has_pending(
            EventKind.JOB_ARRIVAL, EventKind.ACTIVITY_START
        )
        assert not q.has_pending(EventKind.ACTIVITY_START)
        q.pop_until(2.0)
        assert not q.has_pending(EventKind.JOB_ARRIVAL)
