"""Section 3.1 analytical-model auditor tests.

The auditor verifies realized schedules against the paper's constraint
families; here we check both that it certifies correct runs and that it
catches each kind of violation.
"""

import pytest

from repro.analysis.model import (
    AuditReport,
    Violation,
    audit_engine,
    audit_schedule,
)
from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import Engine

from conftest import make_simple_job, make_task, make_two_stage_job


def run_engine(scheduler, jobs, num_machines=4):
    cluster = Cluster(num_machines, machines_per_rack=2, seed=1)
    engine = Engine(cluster, scheduler, jobs)
    engine.run()
    return engine


class TestCleanRuns:
    def test_tetris_run_is_feasible(self):
        jobs = [make_two_stage_job(num_map=4, num_reduce=2,
                                   arrival_time=2.0 * i)
                for i in range(4)]
        engine = run_engine(TetrisScheduler(), jobs)
        report = audit_engine(engine)
        assert report.ok, report.violations[:5]

    def test_slot_fair_violates_only_unchecked_dims(self):
        """Slot-fair over-allocates CPU/disk/network but never memory
        (slots are memory-sized) — the auditor pinpoints exactly that."""
        jobs = []
        for i in range(6):
            job = make_simple_job(num_tasks=8, cpu=4, mem=2,
                                  cpu_work=40.0, arrival_time=float(i))
            jobs.append(job)
        engine = run_engine(SlotFairScheduler(), jobs, num_machines=1)
        report = audit_engine(engine)
        violated = report.violated_dimensions()
        assert "cpu" in violated
        assert "mem" not in violated
        # only capacity violations: execution/precedence/durations clean
        assert not report.of_kind("execution")
        assert not report.of_kind("precedence")
        assert not report.of_kind("duration")


class TestViolationDetection:
    def _finished_task(self, machine=0, start=0.0, finish=10.0, **kw):
        task = make_task(**kw)
        task.mark_runnable()
        task.mark_running(machine, start)
        task.mark_finished(finish)
        return task

    def test_unfinished_task_flagged(self):
        job = make_simple_job(num_tasks=1)
        report = audit_schedule([job], [], {})
        assert report.of_kind("execution")

    def test_precedence_violation_flagged(self):
        job = make_two_stage_job(num_map=1, num_reduce=1)
        map_task = job.dag.roots()[0].tasks[0]
        reduce_task = job.dag.leaves()[0].tasks[0]
        map_task.mark_running(0, 0.0)
        map_task.mark_finished(10.0)
        # reduce illegally starts before the barrier lifts
        reduce_task.state = map_task.state.__class__.RUNNABLE
        reduce_task.mark_running(0, 5.0)
        reduce_task.mark_finished(15.0)
        report = audit_schedule([job], [], {})
        assert report.of_kind("precedence")

    def test_duration_violation_flagged(self):
        job = make_simple_job(num_tasks=1, cpu=1, cpu_work=100.0)
        task = job.all_tasks()[0]
        task.mark_running(0, 0.0)
        task.mark_finished(1.0)  # impossibly fast: bound is 100s
        report = audit_schedule([job], [], {})
        assert report.of_kind("duration")

    def test_capacity_violation_flagged(self):
        cap = DEFAULT_MODEL.vector(cpu=4, mem=8)
        t1 = self._finished_task(cpu=3, mem=1, start=0.0, finish=10.0)
        t2 = self._finished_task(cpu=3, mem=1, start=5.0, finish=15.0)
        placements = [
            (t1, 0, 0.0, t1.demands),
            (t2, 0, 5.0, t2.demands),
        ]
        # wrap the loose tasks in jobs so execution checks pass
        from repro.workload.job import Job
        from repro.workload.stage import Stage

        report = audit_schedule([], placements, {0: cap})
        capacity_violations = report.of_kind("capacity")
        assert capacity_violations
        assert all(v.dimension == "cpu" for v in capacity_violations)

    def test_release_before_acquire_at_same_instant(self):
        """Back-to-back placements at the same timestamp do not create a
        phantom violation: the finishing task frees its booking first."""
        cap = DEFAULT_MODEL.vector(cpu=4, mem=8)
        t1 = self._finished_task(cpu=4, mem=1, start=0.0, finish=10.0)
        t2 = self._finished_task(cpu=4, mem=1, start=10.0, finish=20.0)
        placements = [
            (t1, 0, 0.0, t1.demands),
            (t2, 0, 10.0, t2.demands),
        ]
        report = audit_schedule([], placements, {0: cap})
        assert not report.of_kind("capacity")

    def test_report_helpers(self):
        report = AuditReport(
            [Violation("capacity", "x", dimension="cpu")]
        )
        assert not report.ok
        assert len(report) == 1
        assert report.violated_dimensions() == {"cpu"}


class TestTrackerAwareDefaults:
    def test_capacity_check_skipped_for_tracker_runs(self):
        """With the tracker, booked sums may exceed peak capacity by
        design (Section 4.1 reclamation); audit_engine skips eq. 1
        automatically."""
        from repro.estimation.tracker import ResourceTracker, TrackerConfig
        from repro.sim.engine import EngineConfig

        jobs = [make_simple_job(num_tasks=6, cpu=2, cpu_work=10,
                                arrival_time=float(i)) for i in range(3)]
        cluster = Cluster(2, machines_per_rack=2, seed=4)
        tracker = ResourceTracker(cluster, TrackerConfig(report_period=1.0))
        engine = Engine(cluster, TetrisScheduler(), jobs, tracker=tracker,
                        config=EngineConfig(tracker_period=1.0))
        engine.run()
        default_report = audit_engine(engine)
        assert not default_report.of_kind("capacity")
        forced = audit_engine(engine, include_capacity=True)
        assert len(forced) >= len(default_report)
