"""CLI tests."""

import json

import pytest

from repro.cli import SCHEDULERS, build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    rc = main([
        "generate", "--kind", "suite", "--jobs", "6",
        "--task-scale", "0.02", "--horizon", "100",
        "-o", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, trace_file):
        payload = json.loads(trace_file.read_text())
        assert len(payload) == 6
        assert payload[0]["stages"]

    def test_facebook_kind(self, tmp_path):
        path = tmp_path / "fb.json"
        rc = main([
            "generate", "--kind", "facebook", "--jobs", "5",
            "--horizon", "100", "-o", str(path),
        ])
        assert rc == 0
        assert len(json.loads(path.read_text())) == 5


class TestRun:
    def test_run_tetris(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean JCT" in out and "makespan" in out

    def test_run_with_audit(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--audit",
        ])
        assert rc == 0
        assert "audit" in capsys.readouterr().out

    def test_run_with_knobs(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--fairness-knob", "0.5",
        ])
        assert rc == 0

    def test_unknown_scheduler_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main([
                "run", str(trace_file), "--scheduler", "magic",
            ])


class TestCompare:
    def test_compare_prints_improvements(self, trace_file, capsys):
        rc = main([
            "compare", str(trace_file), "--machines", "8",
            "--schedulers", "tetris,slot-fair",
            "--baseline", "slot-fair",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement over slot-fair" in out
        assert "tetris" in out


class TestSweep:
    def test_fairness_sweep(self, trace_file, capsys):
        rc = main([
            "sweep", str(trace_file), "--machines", "8",
            "--knob", "fairness", "--values", "0,0.5",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows


class TestParser:
    def test_all_registered_schedulers_constructible(self):
        for factory in SCHEDULERS.values():
            assert factory() is not None

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["generate", "-o", "x.json"]
        )
        assert args.command == "generate"
