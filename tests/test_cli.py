"""CLI tests."""

import json

import pytest

from repro.cli import SCHEDULERS, build_parser, main


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.json"
    rc = main([
        "generate", "--kind", "suite", "--jobs", "6",
        "--task-scale", "0.02", "--horizon", "100",
        "-o", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, trace_file):
        payload = json.loads(trace_file.read_text())
        assert len(payload) == 6
        assert payload[0]["stages"]

    def test_facebook_kind(self, tmp_path):
        path = tmp_path / "fb.json"
        rc = main([
            "generate", "--kind", "facebook", "--jobs", "5",
            "--horizon", "100", "-o", str(path),
        ])
        assert rc == 0
        assert len(json.loads(path.read_text())) == 5


class TestRun:
    def test_run_tetris(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean JCT" in out and "makespan" in out

    def test_run_with_audit(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--audit",
        ])
        assert rc == 0
        assert "audit" in capsys.readouterr().out

    def test_run_with_knobs(self, trace_file, capsys):
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--fairness-knob", "0.5",
        ])
        assert rc == 0

    def test_unknown_scheduler_rejected(self, trace_file):
        with pytest.raises(SystemExit):
            main([
                "run", str(trace_file), "--scheduler", "magic",
            ])


class TestCompare:
    def test_compare_prints_improvements(self, trace_file, capsys):
        rc = main([
            "compare", str(trace_file), "--machines", "8",
            "--schedulers", "tetris,slot-fair",
            "--baseline", "slot-fair",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement over slot-fair" in out
        assert "tetris" in out


class TestSweep:
    def test_fairness_sweep(self, trace_file, capsys):
        rc = main([
            "sweep", str(trace_file), "--machines", "8",
            "--knob", "fairness", "--values", "0,0.5",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows


class TestTrace:
    @pytest.fixture
    def obs_dir(self, trace_file, tmp_path):
        out = tmp_path / "obs"
        rc = main([
            "trace", str(trace_file), "--machines", "4",
            "-o", str(out),
        ])
        assert rc == 0
        return out

    def test_writes_all_three_artifacts(self, obs_dir):
        assert (obs_dir / "decisions.jsonl").exists()
        assert (obs_dir / "timeline.json").exists()
        assert (obs_dir / "metrics.prom").exists()

    def test_decision_log_validates(self, obs_dir):
        from repro.obs import validate_jsonl

        valid, errors = validate_jsonl(obs_dir / "decisions.jsonl")
        assert errors == []
        assert valid > 0

    def test_timeline_is_perfetto_loadable_shape(self, obs_dir):
        payload = json.loads((obs_dir / "timeline.json").read_text())
        events = payload["traceEvents"]
        assert payload["otherData"]["scheduler"] == "tetris"
        phases = {e["ph"] for e in events}
        # metadata, task slices, round instants, counters
        assert {"M", "X", "i", "C"} <= phases
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0

    def test_metrics_exposition_format(self, obs_dir):
        text = (obs_dir / "metrics.prom").read_text()
        assert "# TYPE repro_engine_rounds_total counter" in text
        assert "# TYPE repro_engine_round_placements histogram" in text
        assert "repro_tetris_pack_cache_total" in text

    def test_phase_stats_ride_along(self, obs_dir):
        labels = [
            json.loads(line)["label"]
            for line in (obs_dir / "decisions.jsonl").read_text().splitlines()
            if json.loads(line)["type"] == "phase_stats"
        ]
        assert "engine.scheduler_round" in labels
        assert "tetris.schedule" in labels

    def test_trace_with_baseline_scheduler(self, trace_file, tmp_path):
        out = tmp_path / "obs-drf"
        rc = main([
            "trace", str(trace_file), "--machines", "4",
            "--scheduler", "drf", "-o", str(out),
        ])
        assert rc == 0
        types = {
            json.loads(line)["type"]
            for line in (out / "decisions.jsonl").read_text().splitlines()
        }
        # baselines still get a usable trace from the engine hooks
        assert {"round", "task_start"} <= types


class TestInspect:
    def test_summarizes_valid_log(self, trace_file, tmp_path, capsys):
        out = tmp_path / "obs"
        main(["trace", str(trace_file), "--machines", "4", "-o", str(out)])
        capsys.readouterr()
        rc = main(["inspect", str(out / "decisions.jsonl"), "--strict"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "placements:" in text
        assert "by type:" in text

    def test_strict_fails_on_invalid_events(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text(
            '{"type":"round","time":0.0,"machines":1,"placements":0,'
            '"queue_depth":0}\n'
            '{"type":"nonsense","time":0.0}\n'
        )
        assert main(["inspect", str(log)]) == 0  # non-strict tolerates
        capsys.readouterr()
        assert main(["inspect", str(log), "--strict"]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestJsonOutputs:
    def test_run_json_summary(self, trace_file, tmp_path):
        out = tmp_path / "run.json"
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["scheduler"] == "tetris"
        assert payload["summary"]["jobs"] == 6
        assert payload["summary"]["mean_jct"] > 0
        assert payload["wall_seconds"] > 0
        assert payload["placements"] > 0

    def test_compare_json_summaries(self, trace_file, tmp_path):
        out = tmp_path / "cmp.json"
        rc = main([
            "compare", str(trace_file), "--machines", "8",
            "--schedulers", "tetris,slot-fair",
            "--baseline", "slot-fair", "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert set(payload["summaries"]) == {"tetris", "slot-fair"}
        assert "jct_percent" in payload["improvement_over_baseline"]["tetris"]


class TestBench:
    @pytest.fixture(scope="class")
    def profile_dirs(self, tmp_path_factory):
        """One baseline + one fresh capture of the smoke scenario."""
        root = tmp_path_factory.mktemp("bench")
        baseline, fresh = root / "baselines", root / "fresh"
        for directory in (baseline, fresh):
            rc = main([
                "bench", "run", "--scenarios", "smoke",
                "--repeats", "2", "-o", str(directory),
            ])
            assert rc == 0
        return baseline, fresh

    def test_run_writes_schema_valid_profile(self, profile_dirs):
        from repro.bench import load_profile

        baseline, _ = profile_dirs
        profile = load_profile(baseline / "BENCH_smoke.json")
        assert profile["scenario"] == "smoke"
        assert profile["meta"]["config_fingerprint"]
        assert "mean_jct" in profile["metrics"]

    def test_compare_clean_rerun_passes(self, profile_dirs, capsys):
        baseline, fresh = profile_dirs
        rc = main([
            "bench", "compare",
            "--baseline", str(baseline), "--current", str(fresh),
        ])
        assert rc == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_compare_detects_injected_slowdown(
        self, profile_dirs, tmp_path, capsys
    ):
        baseline, fresh = profile_dirs
        slowed_dir = tmp_path / "slowed"
        slowed_dir.mkdir()
        profile = json.loads((fresh / "BENCH_smoke.json").read_text())
        for record in profile["metrics"].values():
            if record["kind"] == "timing" and record["direction"] == "lower":
                record["value"] *= 2.5
                record["samples"] = [s * 2.5 for s in record["samples"]]
        (slowed_dir / "BENCH_smoke.json").write_text(json.dumps(profile))
        verdicts = tmp_path / "verdicts.json"
        rc = main([
            "bench", "compare",
            "--baseline", str(baseline), "--current", str(slowed_dir),
            "--json", str(verdicts),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        payload = json.loads(verdicts.read_text())
        assert payload["failed"] == ["smoke"]
        assert not payload["scenarios"]["smoke"]["ok"]

    def test_compare_missing_baseline_skips(self, profile_dirs, tmp_path,
                                            capsys):
        _, fresh = profile_dirs
        rc = main([
            "bench", "compare",
            "--baseline", str(tmp_path / "empty"), "--current", str(fresh),
        ])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out

    def test_compare_empty_current_fails(self, tmp_path, capsys):
        rc = main([
            "bench", "compare",
            "--baseline", str(tmp_path), "--current", str(tmp_path),
        ])
        assert rc == 1
        assert "no profiles" in capsys.readouterr().out

    def test_report_renders_trajectory(self, profile_dirs, capsys):
        baseline, fresh = profile_dirs
        rc = main([
            "bench", "report", "--dirs", f"{baseline},{fresh}",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "mean JCT (s)" in out

    def test_report_markdown_to_file(self, profile_dirs, tmp_path):
        baseline, fresh = profile_dirs
        out = tmp_path / "trajectory.md"
        rc = main([
            "bench", "report", "--dirs", f"{baseline},{fresh}",
            "--format", "md", "-o", str(out),
        ])
        assert rc == 0
        assert out.read_text().startswith("| scenario |")

    def test_report_no_profiles_fails(self, tmp_path, capsys):
        rc = main(["bench", "report", "--dirs", str(tmp_path / "none")])
        assert rc == 1

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "bench", "run", "--scenarios", "bogus",
                "-o", str(tmp_path),
            ])


class TestParser:
    def test_all_registered_schedulers_constructible(self):
        for factory in SCHEDULERS.values():
            assert factory() is not None

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(
            ["generate", "-o", "x.json"]
        )
        assert args.command == "generate"

    def test_bench_parser_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "run"])
        assert args.quick is True and args.repeats == 3
        args = parser.parse_args(["bench", "run", "--all"])
        assert args.quick is False
        args = parser.parse_args(["bench", "compare"])
        assert args.baseline == "benchmarks/baselines"


class TestWorkers:
    def test_compare_parallel_json_matches_serial(self, trace_file, tmp_path):
        serial_out = tmp_path / "serial.json"
        parallel_out = tmp_path / "parallel.json"
        common = [
            "compare", str(trace_file), "--machines", "8",
            "--schedulers", "tetris,slot-fair,drf,fifo",
            "--baseline", "fifo",
        ]
        assert main(common + ["--json", str(serial_out)]) == 0
        assert main(
            common + ["--workers", "2", "--json", str(parallel_out)]
        ) == 0
        serial = json.loads(serial_out.read_text())
        parallel = json.loads(parallel_out.read_text())
        # simulation outputs are bit-identical; only the execution
        # stanza (backend name, wall clocks) may differ
        assert parallel["summaries"] == serial["summaries"]
        assert (parallel["improvement_over_baseline"]
                == serial["improvement_over_baseline"])
        assert serial["execution"]["backend"] == "serial"
        assert serial["execution"]["workers"] == 1
        assert parallel["execution"]["backend"] == "process"
        assert parallel["execution"]["workers"] == 2
        assert set(parallel["execution"]["runs"]) == set(
            serial["summaries"]
        )
        for row in parallel["execution"]["runs"].values():
            assert row["ok"] is True
            assert row["wall_seconds"] >= 0

    def test_run_json_records_execution(self, trace_file, tmp_path):
        out = tmp_path / "run.json"
        rc = main([
            "run", str(trace_file), "--scheduler", "tetris",
            "--machines", "8", "--workers", "2", "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        stanza = payload["execution"]
        assert stanza["backend"] == "process"
        assert stanza["workers"] == 2
        assert stanza["wall_seconds_total"] > 0

    def test_workers_env_var(self, trace_file, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        out = tmp_path / "run.json"
        rc = main([
            "run", str(trace_file), "--scheduler", "fifo",
            "--machines", "8", "--json", str(out),
        ])
        assert rc == 0
        assert json.loads(out.read_text())["execution"]["workers"] == 2

    def test_sweep_with_workers(self, trace_file, capsys):
        rc = main([
            "sweep", str(trace_file), "--machines", "8",
            "--knob", "fairness", "--values", "0,0.5",
            "--workers", "2",
        ])
        assert rc == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows


class TestBenchHistoryCLI:
    @pytest.fixture(scope="class")
    def history_dir(self, tmp_path_factory):
        """Two captures of the smoke scenario appended to one store."""
        root = tmp_path_factory.mktemp("bench-history")
        for _ in range(2):
            rc = main([
                "bench", "run", "--scenarios", "smoke", "--repeats", "2",
                "-o", str(root / "out"),
                "--history", str(root / "hist"),
                "--trajectory-dir", str(root),
            ])
            assert rc == 0
        return root

    def test_run_appends_history_entries(self, history_dir):
        from repro.bench import HistoryStore

        entries = HistoryStore(history_dir / "hist").entries("smoke")
        assert len(entries) == 2
        assert entries[0].recorded_unix <= entries[1].recorded_unix

    def test_run_writes_trajectory_artifact(self, history_dir):
        from repro.bench import TRAJECTORY_SCHEMA

        payload = json.loads(
            (history_dir / "BENCH_smoke.json").read_text()
        )
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert payload["entries_total"] == 2
        assert len(payload["points"]) == 2
        assert "wall_seconds" in payload["points"][0]["metrics"]

    def test_history_renders_trend(self, history_dir, capsys):
        rc = main([
            "bench", "history", "--scenario", "smoke",
            "--history", str(history_dir / "hist"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "stamp" in out

    def test_history_unknown_scenario_fails(self, history_dir, capsys):
        rc = main([
            "bench", "history", "--scenario", "bogus",
            "--history", str(history_dir / "hist"),
        ])
        assert rc == 1
        assert "no history entries" in capsys.readouterr().out

    def test_diff_clean_pair_passes(self, history_dir, capsys):
        rc = main([
            "bench", "diff", "@1", "@0", "--scenario", "smoke",
            "--history", str(history_dir / "hist"),
        ])
        assert rc == 0
        assert "verdict" in capsys.readouterr().out

    def test_diff_bad_ref_fails(self, history_dir, capsys):
        rc = main([
            "bench", "diff", "@9", "@0", "--scenario", "smoke",
            "--history", str(history_dir / "hist"),
        ])
        assert rc == 1
        assert "out of range" in capsys.readouterr().out

    def test_diff_gates_planted_slowdown_unless_no_gate(
        self, history_dir, tmp_path, capsys
    ):
        from repro.bench import HistoryStore

        store = HistoryStore(history_dir / "hist")
        slowed = json.loads(json.dumps(store.latest("smoke").profile))
        for record in slowed["metrics"].values():
            if record["kind"] == "timing" and record["direction"] == "lower":
                record["value"] *= 3.0
                record["samples"] = [s * 3.0 for s in record["samples"]]
        gated_store = HistoryStore(tmp_path / "gated")
        gated_store.append(store.entries("smoke")[0].profile)
        gated_store.append(slowed, recorded_unix=2_000_000_000.0)
        argv = [
            "bench", "diff", "@1", "@0", "--scenario", "smoke",
            "--history", str(tmp_path / "gated"),
        ]
        assert main(argv) == 1
        assert "attribution" in capsys.readouterr().out
        assert main(argv + ["--no-gate"]) == 0

    def test_inspect_profile_phase_table(self, history_dir, capsys):
        rc = main([
            "inspect", "--profile",
            str(history_dir / "out" / "BENCH_smoke.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tetris.schedule" in out
        assert "self ms" in out

    def test_inspect_profile_reads_history_entry(self, history_dir,
                                                 capsys):
        from repro.bench import HistoryStore

        entry = HistoryStore(history_dir / "hist").latest("smoke")
        rc = main(["inspect", "--profile", str(entry.path)])
        assert rc == 0
        assert "engine.scheduler_round" in capsys.readouterr().out

    def test_inspect_requires_log_or_profile(self, capsys):
        rc = main(["inspect"])
        assert rc == 2
        assert "--profile" in capsys.readouterr().out
