"""Group/queue-level fairness for Tetris (Section 3.4: "jobs (or groups
of jobs)")."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine

from conftest import make_simple_job


def by_template(job):
    return job.template or "default"


class TestGroupCandidates:
    def _scheduler_with_groups(self, knob):
        cluster = Cluster(2, machines_per_rack=2)
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=knob), group_of=by_template
        )
        scheduler.bind(cluster)
        jobs = [
            make_simple_job(num_tasks=5, template="queue-a", name="a1"),
            make_simple_job(num_tasks=5, template="queue-a", name="a2"),
            make_simple_job(num_tasks=5, template="queue-b", name="b1"),
        ]
        for job in jobs:
            job.arrive()
            scheduler.on_job_arrival(job, 0.0)
        return scheduler, jobs

    def test_all_groups_when_knob_zero(self):
        scheduler, jobs = self._scheduler_with_groups(0.0)
        names = {j.name for j in scheduler.candidate_jobs()}
        assert names == {"a1", "a2", "b1"}

    def test_hogging_group_excluded(self):
        scheduler, jobs = self._scheduler_with_groups(0.5)
        # queue-a already holds a big allocation
        scheduler.job_alloc[jobs[0].job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=20, mem=20)
        )
        names = {j.name for j in scheduler.candidate_jobs()}
        assert names == {"b1"}

    def test_starved_group_jobs_all_included(self):
        scheduler, jobs = self._scheduler_with_groups(0.5)
        scheduler.job_alloc[jobs[2].job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=20, mem=20)
        )
        names = {j.name for j in scheduler.candidate_jobs()}
        assert names == {"a1", "a2"}

    def test_within_group_most_deprived_first(self):
        scheduler, jobs = self._scheduler_with_groups(0.5)
        scheduler.job_alloc[jobs[2].job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=20, mem=20)
        )
        scheduler.job_alloc[jobs[0].job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=4)
        )
        ordered = [j.name for j in scheduler.candidate_jobs()]
        assert ordered == ["a2", "a1"]


class TestGroupedEndToEnd:
    def test_runs_and_finishes(self):
        cluster = Cluster(2, machines_per_rack=2)
        jobs = [
            make_simple_job(num_tasks=4, template=f"q{i % 2}",
                            arrival_time=float(i))
            for i in range(4)
        ]
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.25), group_of=by_template
        )
        Engine(cluster, scheduler, jobs).run()
        assert all(j.is_finished for j in jobs)
