"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL, ResourceVector
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork


def make_task(
    cpu: float = 1.0,
    mem: float = 2.0,
    diskr: float = 0.0,
    diskw: float = 0.0,
    netin: float = 0.0,
    netout: float = 0.0,
    cpu_work: float = 10.0,
    write_mb: float = 0.0,
    inputs: Sequence[TaskInput] = (),
) -> Task:
    """A task with the given peak demands and work."""
    demands = DEFAULT_MODEL.vector(
        cpu=cpu, mem=mem, diskr=diskr, diskw=diskw, netin=netin, netout=netout
    )
    return Task(demands, TaskWork(cpu_work, write_mb), inputs=inputs)


def make_simple_job(
    num_tasks: int = 4,
    arrival_time: float = 0.0,
    cpu: float = 1.0,
    mem: float = 2.0,
    cpu_work: float = 10.0,
    name: Optional[str] = None,
    template: Optional[str] = None,
) -> Job:
    """A one-stage CPU-only job."""
    tasks = [
        make_task(cpu=cpu, mem=mem, cpu_work=cpu_work)
        for _ in range(num_tasks)
    ]
    stage = Stage("only", tasks)
    return Job(
        [stage], arrival_time=arrival_time, name=name, template=template
    )


def make_two_stage_job(
    num_map: int = 4,
    num_reduce: int = 2,
    arrival_time: float = 0.0,
    name: Optional[str] = None,
) -> Job:
    """A map-reduce job with a barrier between the stages."""
    maps = [
        make_task(cpu=1, mem=2, cpu_work=10.0) for _ in range(num_map)
    ]
    reduces = [
        make_task(cpu=1, mem=1, netin=50.0, diskr=50.0, cpu_work=5.0,
                  inputs=[TaskInput(100.0, ())])
        for _ in range(num_reduce)
    ]
    map_stage = Stage("map", maps)
    reduce_stage = Stage("reduce", reduces, parents=[map_stage])
    return Job([map_stage, reduce_stage], arrival_time=arrival_time, name=name)


@pytest.fixture
def small_cluster() -> Cluster:
    return Cluster(4, machines_per_rack=2, seed=7)


@pytest.fixture
def capacity() -> ResourceVector:
    return DEFAULT_MODEL.vector(
        cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125
    )
