"""StageIndex candidate-lookup tests."""

import pytest

from repro.schedulers.stage_index import StageIndex
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_task, make_two_stage_job


def make_stage_with_locality():
    tasks = [
        make_task(inputs=[TaskInput(64, (0, 1))]),
        make_task(inputs=[TaskInput(64, (2, 3))]),
        make_task(inputs=[TaskInput(64, (0, 2))]),
    ]
    return Stage("s", tasks)


class TestCandidates:
    def test_local_candidate(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        index.add_stage(stage)
        local = index.local_candidate(stage, 0)
        assert local is not None
        assert any(inp.is_local_to(0) for inp in local.inputs)

    def test_no_local_candidate(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        index.add_stage(stage)
        assert index.local_candidate(stage, 7) is None

    def test_any_candidate(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        index.add_stage(stage)
        assert index.any_candidate(stage) is stage.tasks[0]

    def test_claim_excludes_task(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        index.add_stage(stage)
        first = index.any_candidate(stage)
        index.claim(first)
        assert index.any_candidate(stage) is not first

    def test_claim_all_empties_stage(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        index.add_stage(stage)
        for task in stage.tasks:
            index.claim(task)
        assert index.any_candidate(stage) is None
        assert not index.has_candidates(stage)

    def test_finished_tasks_skipped(self):
        stage = make_stage_with_locality()
        task = stage.tasks[0]
        task.mark_running(0, 0.0)
        task.mark_finished(1.0)
        index = StageIndex()
        index.add_stage(stage)
        assert index.any_candidate(stage) is not task

    def test_unindexed_stage_returns_none(self):
        stage = make_stage_with_locality()
        index = StageIndex()
        assert index.any_candidate(stage) is None
        assert index.local_candidate(stage, 0) is None


class TestJobIndexing:
    def test_add_job_indexes_released_stages_only(self):
        job = make_two_stage_job(num_map=2, num_reduce=2)
        index = StageIndex()
        index.add_job(job)
        map_stage, reduce_stage = job.dag.topological_order()
        assert index.has_candidates(map_stage)
        assert not index.has_candidates(reduce_stage)

    def test_indexed_stages(self):
        job = make_two_stage_job(num_map=2, num_reduce=2)
        index = StageIndex()
        index.add_job(job)
        stages = index.indexed_stages(job)
        assert [s.name for s in stages] == ["map"]

    def test_add_stage_idempotent(self):
        job = make_two_stage_job()
        index = StageIndex()
        index.add_job(job)
        map_stage = job.dag.roots()[0]
        index.claim(map_stage.tasks[0])
        index.add_stage(map_stage)  # must not resurrect the claimed task
        assert index.any_candidate(map_stage) is not map_stage.tasks[0]
