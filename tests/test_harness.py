"""Experiment harness tests."""

import pytest

from repro.estimation.estimator import NoisyEstimator
from repro.experiments.harness import (
    ExperimentConfig,
    run_comparison,
    run_trace,
)
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


@pytest.fixture(scope="module")
def small_trace():
    return generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=6, task_scale=0.03,
                            arrival_horizon=100, seed=9)
    )


class TestRunTrace:
    def test_all_jobs_complete(self, small_trace):
        result = run_trace(
            small_trace, TetrisScheduler(),
            ExperimentConfig(num_machines=8),
        )
        assert len(result.collector.jobs) == len(small_trace)
        assert result.makespan > 0
        assert result.mean_jct > 0

    def test_completion_by_name_stable_across_runs(self, small_trace):
        cfg = ExperimentConfig(num_machines=8)
        r1 = run_trace(small_trace, TetrisScheduler(), cfg)
        r2 = run_trace(small_trace, TetrisScheduler(), cfg)
        assert r1.completion_by_name() == r2.completion_by_name()
        assert set(r1.completion_by_name()) == {j.name for j in small_trace}

    def test_estimator_factory_used(self, small_trace):
        cfg = ExperimentConfig(
            num_machines=8,
            estimator_factory=lambda: NoisyEstimator(sigma=0.1, seed=3),
        )
        result = run_trace(small_trace, TetrisScheduler(), cfg)
        assert len(result.collector.jobs) == len(small_trace)

    def test_fairness_tracking(self, small_trace):
        cfg = ExperimentConfig(num_machines=8, track_fairness=True)
        result = run_trace(small_trace, TetrisScheduler(), cfg)
        assert result.collector.unfairness_integral
        assert result.unfairness_by_name()


class TestRunComparison:
    def test_runs_each_scheduler(self, small_trace):
        results = run_comparison(
            small_trace,
            {
                "tetris": TetrisScheduler,
                "slot-fair": SlotFairScheduler,
            },
            ExperimentConfig(num_machines=8),
        )
        assert set(results) == {"tetris", "slot-fair"}
        for result in results.values():
            assert len(result.collector.jobs) == len(small_trace)
