"""Flow construction (eq. 5) tests."""

import pytest

from repro.cluster.topology import Topology
from repro.sim.runtime import build_flows, choose_read_source
from repro.workload.task import TaskInput

from conftest import make_task


@pytest.fixture
def topo():
    return Topology(8, machines_per_rack=4)


def flows_by_kind(specs):
    out = {"cpu": [], "local": [], "remote": [], "write": []}
    for spec in specs:
        dims = [d for _, d in spec.slots]
        if dims == ["cpu"]:
            out["cpu"].append(spec)
        elif dims == ["diskr"]:
            out["local"].append(spec)
        elif dims == ["diskw"]:
            out["write"].append(spec)
        elif "netin" in dims:
            out["remote"].append(spec)
    return out


class TestChooseReadSource:
    def test_prefers_same_rack(self, topo):
        assert choose_read_source(topo, 0, (5, 2)) == 2

    def test_falls_back_to_first(self, topo):
        assert choose_read_source(topo, 0, (5, 6)) == 5

    def test_empty_locations_rejected(self, topo):
        with pytest.raises(ValueError):
            choose_read_source(topo, 0, ())


class TestBuildFlows:
    def test_cpu_only_task(self, topo):
        task = make_task(cpu=2, cpu_work=30)
        specs = build_flows(task, 0, topo)
        assert len(specs) == 1
        assert specs[0].slots == ((0, "cpu"),)
        assert specs[0].work == 30
        assert specs[0].nominal_rate == 2

    def test_local_read(self, topo):
        task = make_task(cpu=1, cpu_work=1, diskr=50,
                         inputs=[TaskInput(100, (0,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        assert len(kinds["local"]) == 1
        assert kinds["local"][0].work == 100
        assert kinds["local"][0].nominal_rate == 50
        assert not kinds["remote"]

    def test_remote_read_touches_three_slots(self, topo):
        task = make_task(cpu=1, cpu_work=1, netin=40,
                         inputs=[TaskInput(100, (3,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        (remote,) = kinds["remote"]
        assert set(remote.slots) == {
            (3, "diskr"), (3, "netout"), (0, "netin"),
        }
        assert remote.nominal_rate == pytest.approx(40)

    def test_remote_reads_split_rate_by_bytes(self, topo):
        task = make_task(cpu=1, cpu_work=1, netin=60,
                         inputs=[TaskInput(100, (3,)), TaskInput(50, (5,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        rates = sorted(f.nominal_rate for f in kinds["remote"])
        assert rates == [pytest.approx(20), pytest.approx(40)]

    def test_mixed_local_and_remote(self, topo):
        task = make_task(cpu=1, cpu_work=1, diskr=50, netin=40,
                         inputs=[TaskInput(100, (0,)), TaskInput(100, (5,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        assert len(kinds["local"]) == 1 and len(kinds["remote"]) == 1

    def test_write_flow(self, topo):
        task = make_task(cpu=1, cpu_work=1, diskw=20, write_mb=100)
        kinds = flows_by_kind(build_flows(task, 0, topo))
        (write,) = kinds["write"]
        assert write.slots == ((0, "diskw"),)
        assert write.work == 100

    def test_local_read_rate_floored_by_network_demand(self, topo):
        """A shuffle partition that happens to be local is read at least
        at the network rate the task would have streamed it at."""
        task = make_task(cpu=1, cpu_work=1, diskr=0, netin=40,
                         inputs=[TaskInput(100, (0,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        assert kinds["local"][0].nominal_rate == pytest.approx(40)

    def test_no_work_no_flows(self, topo):
        task = make_task(cpu=1, cpu_work=0)
        assert build_flows(task, 0, topo) == []

    def test_all_flows_tagged_with_task(self, topo):
        task = make_task(cpu=1, cpu_work=1, diskw=10, write_mb=10)
        for spec in build_flows(task, 0, topo):
            assert spec.tag == ("task", task.task_id)

    def test_same_source_inputs_coalesce(self, topo):
        task = make_task(cpu=1, cpu_work=1, netin=40,
                         inputs=[TaskInput(50, (3,)), TaskInput(50, (3,))])
        kinds = flows_by_kind(build_flows(task, 0, topo))
        assert len(kinds["remote"]) == 1
        assert kinds["remote"][0].work == 100
