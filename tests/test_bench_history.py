"""The performance history plane: per-commit store, trend/diff views,
and the degradation-bisect oracle (repro.bench.history / .bisect).

Everything here runs on hand-rolled profiles and scripted capture
functions — no git checkout, no real ``git bisect`` — so the search
logic and the store's retention rules are exercised deterministically.
"""

import json
import math

import pytest

from repro.bench import (
    HISTORY_SCHEMA,
    TRAJECTORY_SCHEMA,
    HistoryStore,
    ProfileOracle,
    SCHEMA,
    bisect_linear,
    calibration_stamp,
    choose_repeats,
    collect_history,
    diff_entries,
    render_trend,
    trend_rows,
    write_trajectory_artifact,
)


def make_profile(metrics, scenario="synthetic", sha="a" * 40,
                 fingerprint="fp0", calibration=0.01, created=1_000.0):
    """A minimal schema-valid profile for history/bisect tests."""
    return {
        "schema": SCHEMA,
        "scenario": scenario,
        "kind": "trace",
        "created_unix": created,
        "meta": {
            "git_sha": sha,
            "git_dirty": False,
            "host": "test",
            "platform": "test",
            "python": "3",
            "config_fingerprint": fingerprint,
            "calibration_seconds": calibration,
            "repeats": len(next(iter(metrics.values()))["samples"])
            if metrics else 3,
        },
        "metrics": metrics,
        "phases": {},
        "registry": {},
    }


def timing(value, samples=None, direction="lower"):
    return {
        "kind": "timing",
        "direction": direction,
        "unit": "s",
        "value": value,
        "samples": samples if samples is not None else [value],
    }


BASE_SAMPLES = [0.9, 0.95, 1.0, 1.05, 1.1]


def good_metrics():
    return {
        "wall_seconds": timing(1.0, list(BASE_SAMPLES)),
        "phase:packing:mean_ms": timing(1.0, list(BASE_SAMPLES)),
    }


def bad_metrics(factor=2.0):
    """The planted regression: the packing phase (and the wall clock it
    dominates) slowed by ``factor`` with clearly separated samples."""
    return {
        "wall_seconds": timing(
            factor, [s * factor for s in BASE_SAMPLES]
        ),
        "phase:packing:mean_ms": timing(
            factor, [s * factor for s in BASE_SAMPLES]
        ),
    }


class TestCalibrationStamp:
    def test_same_speed_class_shares_stamp(self):
        a = make_profile({}, calibration=0.0100)
        b = make_profile({}, calibration=0.0103)
        assert calibration_stamp(a) == calibration_stamp(b)

    def test_2x_speed_difference_changes_stamp(self):
        a = make_profile({}, calibration=0.01)
        b = make_profile({}, calibration=0.02)
        assert calibration_stamp(a) != calibration_stamp(b)

    def test_legacy_profile_stamps_uncalibrated(self):
        profile = make_profile({})
        del profile["meta"]["calibration_seconds"]
        assert calibration_stamp(profile) == "uncalibrated"
        profile["meta"]["calibration_seconds"] = 0.0
        assert calibration_stamp(profile) == "uncalibrated"


class TestHistoryStore:
    def test_append_and_load_round_trip(self, tmp_path):
        store = HistoryStore(tmp_path)
        profile = make_profile(good_metrics())
        entry = store.append(profile)
        assert entry.path.is_file()
        loaded = store.load_entry(entry.path)
        assert loaded.profile == profile
        assert loaded.scenario == "synthetic"
        assert loaded.sha == "a" * 40
        assert loaded.calibration_stamp == calibration_stamp(profile)
        payload = json.loads(entry.path.read_text())
        assert payload["schema"] == HISTORY_SCHEMA

    def test_append_rejects_non_profile(self, tmp_path):
        with pytest.raises(ValueError, match="scenario"):
            HistoryStore(tmp_path).append({"not": "a profile"})

    def test_append_warns_on_foreign_schema(self, tmp_path):
        profile = make_profile(good_metrics())
        profile["schema"] = "somebody.else/v9"
        with pytest.warns(RuntimeWarning, match="somebody.else/v9"):
            HistoryStore(tmp_path).append(profile)

    def test_entries_ordered_oldest_first(self, tmp_path):
        store = HistoryStore(tmp_path)
        for t, sha in ((3_000.0, "c" * 40), (1_000.0, "a" * 40),
                       (2_000.0, "b" * 40)):
            store.append(make_profile(good_metrics(), sha=sha, created=t))
        entries = store.entries("synthetic")
        assert [e.recorded_unix for e in entries] == [
            1_000.0, 2_000.0, 3_000.0
        ]
        assert store.latest("synthetic").sha == "c" * 40

    def test_same_millisecond_collision_keeps_both(self, tmp_path):
        store = HistoryStore(tmp_path)
        profile = make_profile(good_metrics())
        first = store.append(profile)
        second = store.append(profile)
        assert first.path != second.path
        assert len(store.entries("synthetic")) == 2

    def test_resolve_at_refs_and_sha_prefix(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(make_profile(good_metrics(), sha="a" * 40,
                                  created=1_000.0))
        store.append(make_profile(good_metrics(), sha="b" * 40,
                                  created=2_000.0))
        assert store.resolve("synthetic", "@0").sha == "b" * 40
        assert store.resolve("synthetic", "@1").sha == "a" * 40
        assert store.resolve("synthetic", "aaaa").sha == "a" * 40
        with pytest.raises(KeyError, match="out of range"):
            store.resolve("synthetic", "@2")
        with pytest.raises(KeyError, match="matches"):
            store.resolve("synthetic", "ffff")
        with pytest.raises(KeyError, match="no history"):
            store.resolve("other", "@0")

    def test_sha_prefix_resolves_newest_recapture(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(make_profile(good_metrics(), created=1_000.0))
        newer = make_profile(bad_metrics(), created=2_000.0)
        store.append(newer)
        assert store.resolve("synthetic", "aa").profile == newer

    def test_for_sha_respects_calibration_stamp(self, tmp_path):
        store = HistoryStore(tmp_path)
        slow_host = make_profile(good_metrics(), calibration=0.02,
                                 created=1_000.0)
        fast_host = make_profile(good_metrics(), calibration=0.01,
                                 created=2_000.0)
        store.append(slow_host)
        store.append(fast_host)
        stamp = calibration_stamp(slow_host)
        hit = store.for_sha("synthetic", "a" * 40, stamp=stamp)
        assert hit is not None
        assert hit.profile["meta"]["calibration_seconds"] == 0.02
        assert store.for_sha("synthetic", "a" * 40,
                             stamp="s+999") is None
        # unrestricted lookup returns the newest capture
        assert store.for_sha(
            "synthetic", "a" * 40
        ).profile is not slow_host

    def test_compact_keeps_newest_and_one_per_commit(self, tmp_path):
        store = HistoryStore(tmp_path)
        # three captures each for two commits, then two recent ones
        t = 1_000.0
        for sha in ("a" * 40, "b" * 40):
            for _ in range(3):
                store.append(make_profile(good_metrics(), sha=sha,
                                          created=t))
                t += 1.0
        for _ in range(2):
            store.append(make_profile(good_metrics(), sha="c" * 40,
                                      created=t))
            t += 1.0
        removed = store.compact("synthetic", keep_last=2, keep_per_sha=1)
        # tail: 3x a + 3x b -> one of each survives; the newest 2 (both
        # c) are untouchable
        assert len(removed) == 4
        assert all(not p.exists() for p in removed)
        survivors = store.entries("synthetic")
        assert len(survivors) == 4
        by_sha = {}
        for e in survivors:
            by_sha[e.sha] = by_sha.get(e.sha, 0) + 1
        assert by_sha == {"a" * 40: 1, "b" * 40: 1, "c" * 40: 2}
        # per-SHA survivor is the newest capture of that commit
        assert store.for_sha("synthetic", "a" * 40).recorded_unix == \
            1_002.0

    def test_compact_rejects_negative_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            HistoryStore(tmp_path).compact(keep_last=-1)

    def test_scenarios_listing(self, tmp_path):
        store = HistoryStore(tmp_path)
        assert store.scenarios() == []
        store.append(make_profile(good_metrics(), scenario="beta"))
        store.append(make_profile(good_metrics(), scenario="alpha"))
        assert store.scenarios() == ["alpha", "beta"]


class TestDiffAndTrend:
    def test_diff_attributes_planted_phase_slowdown(self, tmp_path):
        store = HistoryStore(tmp_path)
        older = store.append(make_profile(good_metrics(), sha="a" * 40,
                                          created=1_000.0))
        newer = store.append(make_profile(bad_metrics(), sha="b" * 40,
                                          created=2_000.0))
        result = diff_entries(older, newer)
        assert not result.ok
        assert [v.phase_label for v in result.attribution()] == \
            ["packing"]

    def test_diff_clean_pair_is_ok(self, tmp_path):
        store = HistoryStore(tmp_path)
        a = store.append(make_profile(good_metrics(), created=1_000.0))
        b = store.append(make_profile(good_metrics(), created=2_000.0))
        assert diff_entries(a, b).ok

    def test_diff_forwards_tolerances(self, tmp_path):
        store = HistoryStore(tmp_path)
        a = store.append(make_profile(good_metrics(), created=1_000.0))
        b = store.append(make_profile(bad_metrics(1.3),
                                      created=2_000.0))
        assert diff_entries(a, b).ok  # inside the default 50% band
        assert not diff_entries(a, b, timing_tolerance=0.1).ok

    def test_trend_rows_carry_deltas(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(make_profile(good_metrics(), sha="a" * 40,
                                  created=1_000.0))
        store.append(make_profile(bad_metrics(), sha="b" * 40,
                                  created=2_000.0))
        header, rows = trend_rows(store.entries("synthetic"))
        assert header[:3] == ["captured", "git", "stamp"]
        assert "wall_seconds" in header
        wall = header.index("wall_seconds")
        assert "(" not in rows[0][wall]  # first row has no predecessor
        assert "(+100%)" in rows[1][wall]

    def test_render_trend_formats(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(make_profile(good_metrics()))
        entries = store.entries("synthetic")
        term = render_trend(entries)
        md = render_trend(entries, fmt="md")
        assert "wall_seconds" in term
        assert md.startswith("| captured |")
        assert render_trend([]) == "no history entries"


class TestTrajectoryArtifact:
    def test_write_and_shape(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for t in (1_000.0, 2_000.0):
            store.append(make_profile(good_metrics(), created=t))
        path = write_trajectory_artifact(store, "synthetic",
                                         tmp_path)
        assert path.name == "BENCH_synthetic.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert payload["entries_total"] == 2
        assert len(payload["points"]) == 2
        point = payload["points"][0]
        assert point["metrics"]["wall_seconds"] == 1.0
        assert point["entry"] in {
            e.path.name for e in store.entries("synthetic")
        }

    def test_max_points_window(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for i in range(5):
            store.append(make_profile(good_metrics(),
                                      created=1_000.0 + i))
        payload = json.loads(write_trajectory_artifact(
            store, "synthetic", tmp_path, max_points=2
        ).read_text())
        assert payload["entries_total"] == 5
        assert [p["recorded_unix"] for p in payload["points"]] == [
            1_003.0, 1_004.0
        ]

    def test_collect_history_merges_roots(self, tmp_path):
        a, b = HistoryStore(tmp_path / "a"), HistoryStore(tmp_path / "b")
        a.append(make_profile(good_metrics(), created=2_000.0))
        b.append(make_profile(good_metrics(), created=1_000.0))
        merged = collect_history([tmp_path / "a", tmp_path / "b"],
                                 "synthetic")
        assert [e.recorded_unix for e in merged] == [2_000.0, 1_000.0][::-1]


class TestChooseRepeats:
    def test_quiet_baseline_costs_minimum(self):
        base = make_profile({"t": timing(1.0, [1.0, 1.0, 1.0])})
        assert choose_repeats(base) == 3

    def test_noisy_baseline_starts_higher(self):
        # cv = 0.3 -> ceil((4 * 0.3 / 0.5)^2) = 6
        base = make_profile({"t": timing(1.0, [0.7, 1.0, 1.3])})
        assert choose_repeats(base) == 6

    def test_very_noisy_baseline_clamps_to_max(self):
        base = make_profile({"t": timing(1.0, [0.2, 1.0, 1.8])})
        assert choose_repeats(base) == 12

    def test_no_timing_samples_falls_back_to_min(self):
        assert choose_repeats(make_profile({})) == 3


class TestProfileOracle:
    def _oracle(self, capture_fn, **kwargs):
        return ProfileOracle(
            make_profile(good_metrics()), capture_fn, **kwargs
        )

    def test_good_commit_judged_good(self):
        oracle = self._oracle(lambda sha, k: make_profile(good_metrics()))
        assert oracle.is_bad("1" * 40) is False
        (step,) = oracle.steps
        assert step.verdict == "good"
        assert step.cached is False
        assert step.repeats == oracle.initial_repeats

    def test_bad_commit_judged_bad_with_blame(self):
        oracle = self._oracle(lambda sha, k: make_profile(bad_metrics()))
        assert oracle.is_bad("2" * 40) is True
        (step,) = oracle.steps
        assert step.verdict == "bad"
        assert "phase:packing:mean_ms" in step.degraded

    def test_inconclusive_verdict_escalates_repeats(self):
        """Band exceeded but rank-insignificant at first: the oracle
        doubles repeats instead of trusting the noise."""
        calls = []

        def capture(sha, repeats):
            calls.append(repeats)
            if repeats <= 3:
                # value breaches the band, but samples are identical to
                # the baseline's -> Mann-Whitney withholds confirmation
                metrics = {
                    "wall_seconds": timing(2.0, list(BASE_SAMPLES)),
                    "phase:packing:mean_ms": timing(
                        1.0, list(BASE_SAMPLES)
                    ),
                }
                return make_profile(metrics)
            return make_profile(bad_metrics())

        oracle = self._oracle(capture)
        assert oracle.is_bad("3" * 40) is True
        assert calls == [3, 6]
        (step,) = oracle.steps
        assert step.escalations == 1
        assert step.repeats == 6

    def test_escalation_stops_at_max_repeats(self):
        def always_inconclusive(sha, repeats):
            metrics = {
                "wall_seconds": timing(2.0, list(BASE_SAMPLES)),
                "phase:packing:mean_ms": timing(1.0, list(BASE_SAMPLES)),
            }
            return make_profile(metrics)

        oracle = self._oracle(always_inconclusive, max_repeats=12)
        assert oracle.is_bad("4" * 40) is False  # never confirmed
        (step,) = oracle.steps
        assert step.repeats == 12
        assert step.escalations == 2  # 3 -> 6 -> 12

    def test_cache_hit_skips_capture(self):
        def must_not_capture(sha, repeats):  # pragma: no cover
            raise AssertionError("capture_fn called despite cache hit")

        oracle = ProfileOracle(
            make_profile(good_metrics()),
            must_not_capture,
            cache_lookup=lambda sha: make_profile(bad_metrics()),
        )
        assert oracle.is_bad("5" * 40) is True
        (step,) = oracle.steps
        assert step.cached is True
        assert step.repeats == 0

    def test_config_mismatch_raises(self):
        oracle = self._oracle(
            lambda sha, k: make_profile(good_metrics(),
                                        fingerprint="fp-changed")
        )
        with pytest.raises(RuntimeError, match="fingerprint"):
            oracle.is_bad("6" * 40)


class TestBisectLinear:
    def test_empty_range(self):
        assert bisect_linear([], lambda sha: True) is None

    @pytest.mark.parametrize("first_bad", [0, 1, 7, 14, 15])
    def test_finds_first_bad_anywhere(self, first_bad):
        commits = [f"{i:040d}" for i in range(16)]
        calls = []

        def is_bad(sha):
            calls.append(sha)
            return commits.index(sha) >= first_bad

        assert bisect_linear(commits, is_bad) == commits[first_bad]
        assert len(calls) <= math.ceil(math.log2(len(commits))) + 2

    def test_end_to_end_scripted_regression(self):
        """The acceptance bar: a seeded regression at a known commit is
        localized by the detector-oracle in <= log2(range)+2 calls."""
        commits = [f"{i:02d}" + "e" * 38 for i in range(20)]
        culprit = 13
        profiles = {
            sha: make_profile(
                good_metrics() if i < culprit else bad_metrics(),
                sha=sha,
            )
            for i, sha in enumerate(commits)
        }
        oracle = ProfileOracle(
            make_profile(good_metrics()),
            lambda sha, repeats: profiles[sha],
        )
        found = bisect_linear(commits, oracle.is_bad)
        assert found == commits[culprit]
        assert len(oracle.steps) <= \
            math.ceil(math.log2(len(commits))) + 2
        # every consulted bad commit blames the planted phase
        for step in oracle.steps:
            if step.verdict == "bad":
                assert "phase:packing:mean_ms" in step.degraded

    def test_history_cache_feeds_oracle(self, tmp_path):
        """A commit already profiled on this host-speed class is judged
        from the store without re-capturing."""
        store = HistoryStore(tmp_path)
        cached_sha = "07" + "e" * 38
        store.append(make_profile(bad_metrics(), sha=cached_sha))
        captures = []

        def capture(sha, repeats):
            captures.append(sha)
            return make_profile(good_metrics(), sha=sha)

        oracle = ProfileOracle(
            make_profile(good_metrics()),
            capture,
            cache_lookup=lambda sha: (
                e.profile
                if (e := store.for_sha("synthetic", sha)) is not None
                else None
            ),
        )
        assert oracle.is_bad(cached_sha) is True
        assert captures == []
        assert oracle.is_bad("08" + "e" * 38) is False
        assert captures == ["08" + "e" * 38]
