"""Machine placement/accounting tests."""

import pytest

from repro.cluster.machine import Machine
from repro.resources import DEFAULT_MODEL

from conftest import make_task


@pytest.fixture
def machine():
    return Machine(
        0,
        DEFAULT_MODEL.vector(
            cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125
        ),
    )


class TestPlacement:
    def test_place_updates_allocation(self, machine):
        task = make_task(cpu=2, mem=4)
        task.mark_runnable()
        machine.place(task)
        assert machine.allocated.get("cpu") == 2
        assert machine.allocated.get("mem") == 4
        assert machine.num_running == 1

    def test_remove_restores_allocation(self, machine):
        task = make_task(cpu=2, mem=4)
        machine.place(task)
        machine.remove(task)
        assert machine.allocated.is_zero()
        assert machine.num_running == 0

    def test_double_place_rejected(self, machine):
        task = make_task()
        machine.place(task)
        with pytest.raises(RuntimeError):
            machine.place(task)

    def test_remove_unplaced_rejected(self, machine):
        with pytest.raises(RuntimeError):
            machine.remove(make_task())

    def test_explicit_booked_demands(self, machine):
        task = make_task(cpu=1)
        booked = DEFAULT_MODEL.vector(cpu=3, mem=6)
        machine.place(task, booked)
        assert machine.allocated.get("cpu") == 3
        assert machine.placed_demands(task) == booked
        machine.remove(task)
        assert machine.allocated.is_zero()

    def test_over_allocation_is_representable(self, machine):
        """Baseline schedulers can book beyond capacity in fluid dims."""
        t1 = make_task(netin=100)
        t2 = make_task(netin=100)
        machine.place(t1, t1.demands)
        machine.place(t2, t2.demands)
        assert machine.allocated.get("netin") == 200  # > 125 capacity
        assert machine.free().get("netin") == -75
        assert machine.free_clamped().get("netin") == 0


class TestCapacityQueries:
    def test_can_fit(self, machine):
        assert machine.can_fit(DEFAULT_MODEL.vector(cpu=16, mem=48))
        assert not machine.can_fit(DEFAULT_MODEL.vector(cpu=17))

    def test_can_fit_after_placement(self, machine):
        machine.place(make_task(cpu=10, mem=10))
        assert machine.can_fit(DEFAULT_MODEL.vector(cpu=6))
        assert not machine.can_fit(DEFAULT_MODEL.vector(cpu=7))

    def test_utilization(self, machine):
        machine.place(make_task(cpu=8, mem=12))
        util = machine.utilization()
        assert util.get("cpu") == pytest.approx(0.5)
        assert util.get("mem") == pytest.approx(0.25)
