"""Block store placement tests."""

import numpy as np
import pytest

from repro.cluster.blockstore import BlockStore
from repro.cluster.topology import Topology


@pytest.fixture
def store():
    return BlockStore(
        Topology(12, machines_per_rack=4),
        replication=3,
        rng=np.random.default_rng(0),
    )


class TestBlockPlacement:
    def test_replica_count(self, store):
        block = store.add_block(128.0)
        assert len(block.replicas) == 3
        assert len(set(block.replicas)) == 3

    def test_second_replica_same_rack(self, store):
        topo = store.topology
        for _ in range(20):
            block = store.add_block(64.0)
            assert topo.same_rack(block.replicas[0], block.replicas[1])

    def test_pinned_primary(self, store):
        block = store.add_block(64.0, primary=5)
        assert block.replicas[0] == 5

    def test_replication_capped_by_cluster_size(self):
        store = BlockStore(Topology(2, machines_per_rack=2), replication=5)
        block = store.add_block(10.0)
        assert len(block.replicas) == 2

    def test_stored_mb_accounting(self, store):
        store.add_block(100.0)
        assert sum(store.stored_mb) == pytest.approx(300.0)

    def test_remove_block(self, store):
        block = store.add_block(100.0)
        store.remove_block(block.block_id)
        assert sum(store.stored_mb) == pytest.approx(0.0)
        assert block.block_id not in store.blocks

    def test_negative_size_rejected(self, store):
        with pytest.raises(ValueError):
            store.add_block(-1.0)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            BlockStore(Topology(4), replication=0)


class TestDatasets:
    def test_add_dataset_splits_into_blocks(self, store):
        blocks = store.add_dataset(1000.0, block_mb=256.0)
        assert len(blocks) == 4
        assert sum(b.size_mb for b in blocks) == pytest.approx(1000.0)
        assert blocks[-1].size_mb == pytest.approx(1000.0 - 3 * 256.0)

    def test_total_stored_counts_replicas(self, store):
        store.add_dataset(512.0, block_mb=256.0)
        assert store.total_stored_mb() == pytest.approx(512.0 * 3)

    def test_machine_blocks(self, store):
        block = store.add_block(64.0)
        for machine in block.replicas:
            assert block in store.machine_blocks(machine)

    def test_zero_block_size_rejected(self, store):
        with pytest.raises(ValueError):
            store.add_dataset(100.0, block_mb=0)
