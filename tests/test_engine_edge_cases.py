"""Engine edge cases: empty workloads, simultaneous events, evacuation."""

import pytest

from repro.activity.ingestion import evacuation, ingestion
from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig

from conftest import make_simple_job, make_task


class TestEmptyAndTrivial:
    def test_no_jobs_no_activities(self):
        engine = Engine(Cluster(2, machines_per_rack=2), FifoScheduler(), [])
        collector = engine.run()
        assert collector.makespan() == 0.0
        assert len(collector.jobs) == 0

    def test_activities_only(self):
        act = ingestion(0, start_time=2.0, size_mb=100, rate_mbps=50)
        engine = Engine(
            Cluster(1), FifoScheduler(), [], activities=[act]
        )
        engine.run()
        assert act.finish_time == pytest.approx(4.0)

    def test_job_with_empty_stage_raises_nothing(self):
        from repro.workload.job import Job
        from repro.workload.stage import Stage

        job = Job([Stage("empty", []),])
        engine = Engine(Cluster(1), FifoScheduler(), [job])
        engine.run()
        assert job.is_finished or job.num_tasks == 0


class TestSimultaneity:
    def test_simultaneous_arrivals(self):
        jobs = [make_simple_job(num_tasks=2, arrival_time=10.0,
                                name=f"j{i}") for i in range(4)]
        engine = Engine(Cluster(2, machines_per_rack=2),
                        FifoScheduler(), jobs)
        engine.run()
        assert all(j.is_finished for j in jobs)

    def test_identical_tasks_finish_together(self):
        job = make_simple_job(num_tasks=4, cpu=2, cpu_work=20)
        engine = Engine(Cluster(4, machines_per_rack=2),
                        FifoScheduler(), [job])
        engine.run()
        finishes = {round(t.finish_time, 9) for t in job.all_tasks()}
        assert len(finishes) == 1


class TestEvacuationEndToEnd:
    def test_evacuation_completes_and_contends(self):
        """Evacuation drains diskr+netout; a co-located disk reader
        slows it down and vice versa."""
        cluster = Cluster(1)
        act = evacuation(0, start_time=0.0, size_mb=1000, rate_mbps=100)
        engine = Engine(cluster, FifoScheduler(), [], activities=[act])
        engine.run()
        assert act.finish_time == pytest.approx(10.0)

    def test_tracker_sees_evacuation(self):
        cluster = Cluster(2, machines_per_rack=2)
        tracker = ResourceTracker(
            cluster, TrackerConfig(report_period=1.0, ramp_seconds=0.0)
        )
        act = evacuation(0, start_time=0.0, size_mb=50_000, rate_mbps=120)
        from repro.workload.job import Job
        from repro.workload.stage import Stage
        from repro.workload.task import TaskInput

        # disk-read-heavy tasks with input pinned on both machines
        tasks = []
        for _ in range(4):
            block = cluster.blockstore.add_block(500.0, primary=0)
            tasks.append(
                make_task(cpu=1, mem=1, diskr=120, netin=60, cpu_work=1,
                          inputs=[TaskInput(500.0, (0, 1))])
            )
        job = Job([Stage("read", tasks)], arrival_time=5.0)
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        engine = Engine(
            cluster, scheduler, [job], activities=[act], tracker=tracker,
            config=EngineConfig(tracker_period=1.0),
        )
        engine.run()
        # evacuation holds machine 0's disk; the readers go to machine 1
        placed_late = [
            t for t in tasks if t.start_time and t.start_time > 5.0
        ]
        assert placed_late
        assert all(t.machine_id == 1 for t in placed_late)


class TestSamplePeriod:
    def test_sampling_respects_period(self):
        job = make_simple_job(num_tasks=2, cpu=1, cpu_work=100)
        engine = Engine(
            Cluster(1), FifoScheduler(), [job],
            config=EngineConfig(sample_period=25.0),
        )
        collector = engine.run()
        times = [p.time for p in collector.timeline]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= 0 for g in gaps)
        # ~100s run with 25s period: a handful of samples, not hundreds
        assert len(times) < 20
