"""Tests for the streaming scheduler service (repro.serve).

The load-bearing property: a no-drop, unpaced daemon replay produces a
placement log *bit-identical* to the batch engine on the same
materialized trace — same tasks, same machines, same times, same booked
vectors, in the same order.  Everything else (admission shedding,
backpressure, shutdown draining) is explicit, accounted deviation from
that baseline.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker
from repro.obs import Registry
from repro.schedulers.tetris import TetrisScheduler
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    Arrival,
    JobSource,
    SchedulerService,
    ServeConfig,
    StagingError,
    SyntheticSource,
    TraceReplaySource,
    verify_free_vectors,
)
from repro.sim.engine import Engine, EngineConfig
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


def _trace(num_jobs=10, seed=3, horizon=150.0):
    return generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs,
            task_scale=0.03,
            arrival_horizon=horizon,
            seed=seed,
        )
    )


def _build(trace, num_machines=6, seed=3, use_tracker=False):
    cluster = Cluster(num_machines, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    tracker = ResourceTracker(cluster) if use_tracker else None
    return cluster, jobs, tracker


def _placements(engine):
    return [
        (task.job.name, task.stage.name, task.index,
         machine_id, time, tuple(booked.data))
        for task, machine_id, time, booked in engine.placement_log
    ]


def _batch_run(trace, seed=3, num_machines=6, use_tracker=False):
    cluster, jobs, tracker = _build(trace, num_machines, seed, use_tracker)
    engine = Engine(
        cluster, TetrisScheduler(), jobs,
        tracker=tracker, config=EngineConfig(seed=seed),
    )
    engine.run()
    return engine


def _serve_run(
    trace, seed=3, num_machines=6, use_tracker=False,
    max_batch=8, admission=None, registry=None,
    serve_config=None, max_placement_log=None,
):
    cluster, jobs, tracker = _build(trace, num_machines, seed, use_tracker)
    engine = Engine(
        cluster, TetrisScheduler(), [],
        tracker=tracker,
        config=EngineConfig(seed=seed, max_placement_log=max_placement_log),
        metrics=registry,
    )
    service = SchedulerService(
        engine,
        TraceReplaySource(jobs),
        admission if admission is not None
        else AdmissionController(AdmissionConfig(queue_cap=10_000)),
        serve_config if serve_config is not None
        else ServeConfig(max_batch=max_batch),
        registry=registry,
    )
    report = asyncio.run(service.serve())
    return engine, report


# ---------------------------------------------------------------------------
# the bit-identity property
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("max_batch", [1, 8, 64])
    def test_streamed_replay_matches_batch(self, seed, max_batch):
        trace = _trace(num_jobs=12, seed=seed)
        batch = _batch_run(trace, seed=seed)
        streamed, report = _serve_run(
            trace, seed=seed, max_batch=max_batch
        )
        assert _placements(streamed) == _placements(batch)
        assert report.jobs_committed == len(trace)
        assert report.jobs_finished == len(trace)
        assert report.invariant_violations == 0

    def test_streamed_replay_matches_batch_with_tracker(self):
        # the tracker's report chain must survive idle stream gaps
        # exactly as it does in a batch run
        trace = _trace(num_jobs=10, seed=11)
        batch = _batch_run(trace, seed=11, use_tracker=True)
        streamed, report = _serve_run(
            trace, seed=11, use_tracker=True, max_batch=3
        )
        assert _placements(streamed) == _placements(batch)
        assert report.invariant_violations == 0

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_batch=st.integers(min_value=1, max_value=32),
    )
    def test_streamed_replay_matches_batch_property(self, seed, max_batch):
        trace = _trace(num_jobs=6, seed=seed, horizon=80.0)
        batch = _batch_run(trace, seed=seed, num_machines=4)
        streamed, _ = _serve_run(
            trace, seed=seed, num_machines=4, max_batch=max_batch
        )
        assert _placements(streamed) == _placements(batch)

    def test_block_policy_is_lossless(self):
        # backpressure instead of shedding: a tiny queue with "block"
        # still commits every job and stays bit-identical
        trace = _trace(num_jobs=8, seed=5)
        batch = _batch_run(trace, seed=5)
        streamed, report = _serve_run(
            trace, seed=5, max_batch=1,
            admission=AdmissionController(
                AdmissionConfig(queue_cap=2, policy="block")
            ),
        )
        assert _placements(streamed) == _placements(batch)
        assert report.jobs_committed == len(trace)
        assert report.admission["rejected"] == 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_queue_full_rejects_and_accounts(self):
        async def scenario():
            ctl = AdmissionController(
                AdmissionConfig(queue_cap=2, policy="reject")
            )
            src = SyntheticSource(num_jobs=5)
            arrivals = [a async for a in src.arrivals()]
            outcomes = [await ctl.offer(a) for a in arrivals]
            return ctl, outcomes

        ctl, outcomes = asyncio.run(scenario())
        assert outcomes == [True, True, False, False, False]
        assert ctl.stats.admitted == 2
        assert ctl.stats.rejected_queue_full == 3
        assert ctl.stats.rejected == 3
        assert ctl.stats.peak_depth == 2

    def test_rate_limit_rejects_beyond_burst(self):
        clock = [0.0]

        async def scenario():
            ctl = AdmissionController(
                AdmissionConfig(rate=1.0, burst=2.0, queue_cap=100),
                clock=lambda: clock[0],
            )
            src = SyntheticSource(num_jobs=4)
            arrivals = [a async for a in src.arrivals()]
            burst = [await ctl.offer(a) for a in arrivals[:3]]
            clock[0] = 1.0  # one token refilled
            late = await ctl.offer(arrivals[3])
            return ctl, burst, late

        ctl, burst, late = asyncio.run(scenario())
        assert burst == [True, True, False]
        assert late is True
        assert ctl.stats.rejected_rate == 1

    def test_closed_controller_rejects(self):
        async def scenario():
            ctl = AdmissionController()
            await ctl.close()
            src = SyntheticSource(num_jobs=1)
            arrivals = [a async for a in src.arrivals()]
            return ctl, await ctl.offer(arrivals[0])

        ctl, admitted = asyncio.run(scenario())
        assert admitted is False
        assert ctl.stats.rejected_closed == 1

    def test_service_sheds_overflow_but_serves_the_rest(self):
        cluster = Cluster(4, seed=0)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=0)
        )
        # a queue of 1 with an eager producer forces queue-full rejects
        service = SchedulerService(
            engine,
            SyntheticSource(num_jobs=30, tasks_per_job=3),
            AdmissionController(AdmissionConfig(queue_cap=1)),
            ServeConfig(max_batch=1),
        )
        report = asyncio.run(service.serve())
        adm = report.admission
        assert adm["offered"] == 30
        assert adm["admitted"] + adm["rejected"] == 30
        assert report.jobs_committed == adm["admitted"]
        # every committed job ran to completion despite the shedding
        assert report.jobs_finished == report.jobs_committed
        assert report.invariant_violations == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_cap=0)
        with pytest.raises(ValueError):
            AdmissionConfig(policy="drop-newest")
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(duration=0.0)


# ---------------------------------------------------------------------------
# shutdown and failure paths
# ---------------------------------------------------------------------------

class TestShutdown:
    def test_in_flight_arrivals_drain_as_dropped(self):
        cluster = Cluster(4, seed=1)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=1)
        )
        admission = AdmissionController(AdmissionConfig(queue_cap=100))
        service = SchedulerService(
            engine,
            SyntheticSource(num_jobs=0),
            admission,
            ServeConfig(),
        )

        async def scenario():
            # arrivals already admitted (in flight) when shutdown lands
            src = SyntheticSource(num_jobs=4, tasks_per_job=2)
            async for arrival in src.arrivals():
                assert await admission.offer(arrival)
            service.request_shutdown("test")
            return await service.serve()

        report = asyncio.run(scenario())
        assert report.shutdown_reason == "test"
        assert report.jobs_dropped_on_shutdown == 4
        assert report.jobs_committed == 0
        assert report.placements == 0
        assert report.invariant_violations == 0

    def test_committed_jobs_finish_after_midstream_shutdown(self):
        cluster = Cluster(4, seed=2)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=2)
        )
        service_box = []

        class ShutdownMidway(JobSource):
            async def arrivals(self):
                src = SyntheticSource(num_jobs=10, tasks_per_job=2)
                count = 0
                async for arrival in src.arrivals():
                    yield arrival
                    count += 1
                    if count == 5:
                        service_box[0].request_shutdown("midway")

        service = SchedulerService(
            engine, ShutdownMidway(), AdmissionController(), ServeConfig()
        )
        service_box.append(service)
        report = asyncio.run(service.serve())
        assert report.shutdown_reason == "midway"
        adm = report.admission
        assert (report.jobs_committed + report.jobs_dropped_on_shutdown
                == adm["admitted"])
        # whatever was committed before the shutdown ran to completion
        assert report.jobs_finished == report.jobs_committed
        assert report.invariant_violations == 0

    def test_out_of_order_batch_aborts_without_commit(self):
        class OutOfOrder(JobSource):
            async def arrivals(self):
                src = SyntheticSource(
                    num_jobs=2, interarrival=10.0, start_time=0.0
                )
                jobs = [a async for a in src.arrivals()]
                yield jobs[1]  # t=10 first
                yield jobs[0]  # then t=0: violates the ordering contract

        cluster = Cluster(4, seed=3)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=3)
        )
        service = SchedulerService(
            engine, OutOfOrder(), AdmissionController(), ServeConfig()
        )
        report = asyncio.run(service.serve())
        # tentative state only: the bad batch left nothing behind
        assert report.batches_aborted == 1
        assert report.jobs_aborted == 2
        assert report.jobs_committed == 0
        assert report.placements == 0
        assert report.staging_errors
        assert "event-time violation" in report.staging_errors[0]

    def test_mismatched_arrival_record_aborts(self):
        class Mismatched(JobSource):
            async def arrivals(self):
                src = SyntheticSource(num_jobs=1)
                async for arrival in src.arrivals():
                    yield Arrival(arrival.job, arrival.time + 5.0)

        cluster = Cluster(4, seed=4)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=4)
        )
        service = SchedulerService(
            engine, Mismatched(), AdmissionController(), ServeConfig()
        )
        report = asyncio.run(service.serve())
        assert report.batches_aborted == 1
        assert report.jobs_committed == 0

    def test_engine_rejects_stale_arrival(self):
        cluster = Cluster(4, seed=5)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=5)
        )
        engine.open_stream()
        engine.start()

        async def scenario():
            src = SyntheticSource(num_jobs=2, interarrival=50.0)
            return [a async for a in src.arrivals()]

        first, second = asyncio.run(scenario())
        engine.add_job(second.job)  # t=50
        engine.run_until(50.0, inclusive=True)
        with pytest.raises(ValueError, match="event-time violation"):
            engine.add_job(first.job)  # t=0, behind the clock

    def test_preloaded_engine_rejected(self):
        trace = _trace(num_jobs=2)
        cluster, jobs, _ = _build(trace)
        engine = Engine(
            cluster, TetrisScheduler(), jobs, config=EngineConfig(seed=3)
        )
        with pytest.raises(ValueError, match="streaming engine"):
            SchedulerService(
                engine, TraceReplaySource([]), AdmissionController()
            )


# ---------------------------------------------------------------------------
# the free-vector invariant
# ---------------------------------------------------------------------------

class TestInvariants:
    def test_clean_run_has_no_violations(self):
        _, report = _serve_run(_trace(num_jobs=6))
        assert report.invariant_checks > 0
        assert report.invariant_violations == 0

    def test_corrupted_allocation_is_detected(self):
        engine, _ = _serve_run(_trace(num_jobs=4))
        assert verify_free_vectors(engine.cluster) == []
        machine = engine.cluster.machines[0]
        machine.allocated.data[0] += 1.5  # simulated double-deduction
        issues = verify_free_vectors(engine.cluster)
        assert issues
        assert "machine 0" in issues[0]


# ---------------------------------------------------------------------------
# reporting and metrics
# ---------------------------------------------------------------------------

class TestReporting:
    def test_report_is_json_serializable(self):
        _, report = _serve_run(_trace(num_jobs=5))
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["jobs"]["committed"] == 5
        assert payload["placements"] > 0
        assert payload["placements_per_sec"] > 0
        assert payload["invariants"]["violations"] == 0

    def test_registry_gauges_populate(self):
        registry = Registry()
        _, report = _serve_run(_trace(num_jobs=5), registry=registry)
        snap = registry.snapshot()
        assert snap["repro_serve_jobs_committed_total"]["values"][""] == 5
        decisions = snap["repro_serve_admission_total"]["values"]
        assert decisions.get("decision=admitted") == 5
        batches = snap["repro_serve_batches_total"]["values"]
        assert sum(batches.values()) == report.batches_committed
        latency = snap["repro_serve_placement_latency_seconds"]["values"][""]
        assert latency["count"] == 5  # one first-placement per job
        assert snap["repro_serve_placements_per_sec"]["values"][""] > 0

    def test_throughput_is_reported(self):
        _, report = _serve_run(_trace(num_jobs=5))
        assert report.drive_seconds > 0
        assert report.wall_seconds >= report.drive_seconds
        assert report.placements_per_sec == pytest.approx(
            report.placements / report.drive_seconds
        )


# ---------------------------------------------------------------------------
# the re-entrant engine stepping API
# ---------------------------------------------------------------------------

class TestEngineStepping:
    def test_run_until_infinity_equals_run(self):
        trace = _trace(num_jobs=6, seed=9)
        batch = _batch_run(trace, seed=9)
        cluster, jobs, _ = _build(trace, seed=9)
        engine = Engine(
            cluster, TetrisScheduler(), jobs, config=EngineConfig(seed=9)
        )
        engine.start()
        engine.run_until(float("inf"))
        engine.finalize()
        assert _placements(engine) == _placements(batch)
        assert engine.now == batch.now

    def test_run_until_is_resumable_in_slices(self):
        trace = _trace(num_jobs=6, seed=10)
        batch = _batch_run(trace, seed=10)
        cluster, jobs, _ = _build(trace, seed=10)
        engine = Engine(
            cluster, TetrisScheduler(), jobs, config=EngineConfig(seed=10)
        )
        engine.start()
        while engine.run_until(float("inf"), max_steps=3) == 3:
            pass
        engine.finalize()
        assert _placements(engine) == _placements(batch)

    def test_exclusive_limit_stops_before_boundary(self):
        async def scenario():
            src = SyntheticSource(num_jobs=3, interarrival=10.0)
            return [a async for a in src.arrivals()]

        arrivals = asyncio.run(scenario())
        cluster = Cluster(2, seed=0)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=0)
        )
        engine.open_stream()
        engine.start()
        for arrival in arrivals:
            engine.add_job(arrival.job)
        engine.run_until(10.0, inclusive=False)
        assert engine.now < 10.0
        engine.run_until(10.0, inclusive=True)
        assert engine.now >= 10.0

    def test_open_stream_survives_event_drought(self):
        # with the stream open and nothing queued, run_until returns
        # instead of raising the stuck-simulation error
        cluster = Cluster(2, seed=0)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=0)
        )
        engine.open_stream()
        engine.start()
        steps = engine.run_until(float("inf"))
        assert steps == 0


# ---------------------------------------------------------------------------
# the telemetry surfaces (/healthz, /status, rolling windows, latency scan)
# ---------------------------------------------------------------------------

def _make_service(
    trace, seed=3, num_machines=6, max_placement_log=None,
    serve_config=None, registry=None,
):
    cluster, jobs, _ = _build(trace, num_machines, seed)
    engine = Engine(
        cluster, TetrisScheduler(), [],
        config=EngineConfig(seed=seed, max_placement_log=max_placement_log),
        metrics=registry,
    )
    service = SchedulerService(
        engine,
        TraceReplaySource(jobs),
        AdmissionController(AdmissionConfig(queue_cap=10_000)),
        serve_config if serve_config is not None else ServeConfig(),
        registry=registry,
    )
    return engine, service


class TestPlacementLatencyScan:
    def test_uncapped_log_yields_full_coverage(self):
        import warnings

        engine, service = _make_service(_trace(num_jobs=6))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            report = asyncio.run(service.serve())
        assert report.latency_scan_misses == 0
        assert report.placement_latency["count"] == 6
        assert report.placement_latency["scan_misses"] == 0

    def test_capped_log_warns_and_accounts_misses(self):
        # a 2-entry log cap with 8-job batches: placements are evicted
        # between scans, so coverage degrades -- loudly
        engine, service = _make_service(
            _trace(num_jobs=10),
            max_placement_log=2,
            serve_config=ServeConfig(max_batch=8),
        )
        with pytest.warns(RuntimeWarning, match="placement log cap"):
            report = asyncio.run(service.serve())
        assert report.latency_scan_misses > 0
        assert report.placement_latency["scan_misses"] == (
            report.latency_scan_misses
        )
        # every placement is either scanned or counted as missed
        assert report.latency_scan_misses < engine.num_placements

    def test_capped_log_warns_once(self):
        import warnings

        _, service = _make_service(
            _trace(num_jobs=10),
            max_placement_log=2,
            serve_config=ServeConfig(max_batch=8),
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            asyncio.run(service.serve())
        cap_warnings = [
            w for w in caught if "placement log cap" in str(w.message)
        ]
        assert len(cap_warnings) == 1


class TestRollingWindowTelemetry:
    def test_window_gauges_populate(self):
        registry = Registry()
        _, service = _make_service(
            _trace(num_jobs=6),
            serve_config=ServeConfig(window_seconds=60.0),
            registry=registry,
        )
        asyncio.run(service.serve())
        snap = registry.snapshot()
        assert snap["repro_serve_window_placements_per_sec"]["values"][""] >= 0
        latency = snap["repro_serve_window_placement_latency_seconds"]["values"]
        assert set(latency) == {
            "quantile=0.5", "quantile=0.95", "quantile=0.99"
        }
        assert latency["quantile=0.5"] <= latency["quantile=0.99"]
        assert snap["repro_serve_window_admission_reject_rate"]["values"][""] == 0.0

    def test_windows_off_by_default(self):
        registry = Registry()
        _, service = _make_service(_trace(num_jobs=4), registry=registry)
        asyncio.run(service.serve())
        snap = registry.snapshot()
        assert "repro_serve_window_placements_per_sec" not in snap
        assert service.window_snapshot() is None

    def test_window_snapshot_shape(self):
        _, service = _make_service(
            _trace(num_jobs=6),
            serve_config=ServeConfig(window_seconds=45.0),
        )
        asyncio.run(service.serve())
        snap = service.window_snapshot()
        assert snap["seconds"] == 45.0
        assert snap["placements_per_sec"] >= 0.0
        # quantiles are either real floats or None, never NaN
        for key in ("latency_p50", "latency_p95", "latency_p99"):
            value = snap[key]
            assert value is None or value == value
        assert snap["admission_reject_rate"] == 0.0
        json.dumps(snap)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="window_seconds"):
            ServeConfig(window_seconds=0.0)
        with pytest.raises(ValueError, match="liveness_deadline"):
            ServeConfig(liveness_deadline=-1.0)


class TestHealthAndStatus:
    def test_health_after_clean_run(self):
        _, service = _make_service(_trace(num_jobs=5))
        asyncio.run(service.serve())
        health = service.health()
        assert health["healthy"] is True
        assert health["status"] == "ok"
        assert health["phase"] == "done"
        assert health["queue_depth"] == 0
        assert health["watermark"]["lag_seconds"] == 0.0
        assert health["invariant_violations"] == 0
        json.dumps(health)

    def test_health_before_serve_is_idle_and_healthy(self):
        _, service = _make_service(_trace(num_jobs=3))
        health = service.health()
        assert health["healthy"] is True
        assert health["phase"] == "init"
        assert health["uptime_seconds"] == 0.0

    def test_stalled_consumer_reports_unhealthy(self):
        clock = [0.0]
        cluster, jobs, _ = _build(_trace(num_jobs=3), 6, 3)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=3)
        )
        service = SchedulerService(
            engine,
            TraceReplaySource(jobs),
            AdmissionController(AdmissionConfig(queue_cap=100)),
            ServeConfig(liveness_deadline=5.0),
            clock=lambda: clock[0],
        )
        # simulate a wedged active consumer: phase active, no progress
        service._phase = "active"
        service._last_progress = 0.0
        clock[0] = 10.0
        health = service.health()
        assert health["healthy"] is False
        assert health["status"] == "stalled"
        assert health["liveness"]["last_progress_age_seconds"] == 10.0

    def test_idle_waiting_never_counts_as_stalled(self):
        clock = [0.0]
        cluster, jobs, _ = _build(_trace(num_jobs=3), 6, 3)
        engine = Engine(
            cluster, TetrisScheduler(), [], config=EngineConfig(seed=3)
        )
        service = SchedulerService(
            engine,
            TraceReplaySource(jobs),
            AdmissionController(AdmissionConfig(queue_cap=100)),
            ServeConfig(liveness_deadline=5.0),
            clock=lambda: clock[0],
        )
        service._phase = "waiting"
        service._last_progress = 0.0
        clock[0] = 1000.0
        assert service.health()["healthy"] is True

    def test_invariant_violation_is_unhealthy(self):
        _, service = _make_service(_trace(num_jobs=3))
        asyncio.run(service.serve())
        service.report.invariant_violations = 1
        health = service.health()
        assert health["healthy"] is False
        assert health["status"] == "invariant-violation"

    def test_status_snapshot_shape_and_liveness(self):
        _, service = _make_service(
            _trace(num_jobs=5),
            serve_config=ServeConfig(window_seconds=60.0),
        )
        asyncio.run(service.serve())
        snap = service.status_snapshot()
        assert snap["phase"] == "done"
        assert snap["jobs"]["offered"] == 5
        assert snap["jobs"]["admitted"] == 5
        assert snap["jobs"]["finished"] == 5
        assert snap["placements"] > 0
        assert snap["queue_depth"] == 0
        assert snap["window"]["seconds"] == 60.0
        assert snap["placement_latency"]["scan_misses"] == 0
        json.dumps(snap)

    def test_status_snapshot_before_serve(self):
        _, service = _make_service(_trace(num_jobs=3))
        snap = service.status_snapshot()
        assert snap["phase"] == "init"
        assert snap["placements"] == 0
        assert snap["wall_seconds"] == 0.0
        json.dumps(snap)


class TestLiveProfile:
    """The /debug/profile payload source (SchedulerService.profile_snapshot)."""

    def _run_with_profiler(self, window_seconds=None):
        from repro.profiling import Profiler

        trace = _trace(num_jobs=6)
        cluster, jobs, tracker = _build(trace)
        engine = Engine(
            cluster, TetrisScheduler(), [],
            config=EngineConfig(seed=3),
            profiler=Profiler(),
        )
        service = SchedulerService(
            engine,
            TraceReplaySource(jobs),
            AdmissionController(AdmissionConfig(queue_cap=10_000)),
            ServeConfig(max_batch=8, window_seconds=window_seconds),
        )
        asyncio.run(service.serve())
        return service

    def test_no_profiler_reports_disabled(self):
        trace = _trace(num_jobs=4)
        cluster, jobs, _ = _build(trace)
        engine = Engine(cluster, TetrisScheduler(), [],
                        config=EngineConfig(seed=3))
        service = SchedulerService(
            engine,
            TraceReplaySource(jobs),
            AdmissionController(AdmissionConfig(queue_cap=10_000)),
            ServeConfig(max_batch=8),
        )
        snap = service.profile_snapshot()
        assert snap["enabled"] is False
        assert snap["phases"] == {}
        assert "without a profiler" in snap["note"]

    def test_phases_surface_with_self_time(self):
        service = self._run_with_profiler(window_seconds=60.0)
        snap = service.profile_snapshot()
        assert snap["enabled"] is True
        assert "engine.scheduler_round" in snap["phases"]
        entry = snap["phases"]["engine.scheduler_round"]
        assert entry["count"] > 0
        assert 0.0 < entry["self_seconds"] <= entry["total_seconds"]
        assert entry["mean_ms"] > 0.0
        # the payload must be JSON-serializable as-is (it goes over HTTP)
        json.dumps(snap)

    def test_rolling_checkpoints_only_with_window(self):
        without = self._run_with_profiler(window_seconds=None)
        assert without.profile_snapshot()["checkpoints"] == 0
        with_window = self._run_with_profiler(window_seconds=60.0)
        assert with_window.profile_snapshot()["checkpoints"] > 0

    def test_window_rates_appear_once_span_elapses(self):
        service = self._run_with_profiler(window_seconds=60.0)
        snap = service.profile_snapshot()
        entry = snap["phases"]["engine.scheduler_round"]
        window = entry.get("window")
        if window is not None:  # needs a checkpoint older than "now"
            assert window["rate_per_sec"] >= 0.0
            assert window["busy_fraction"] >= 0.0
            assert window["seconds"] > 0.0
