"""The batched packing engine and the scheduler-state bugfixes.

Covers:

- the equivalence bar for the vectorized path: on fixed seeds, end-to-end
  simulations under the scalar and vectorized Tetris produce *identical*
  placements (same task, same machine, same instant) across scorers,
  masked dimensions, knob settings, estimators, trackers and failure
  injection;
- stable ``stage_id`` keys: back-to-back runs never alias per-stage
  scheduler state the way recycled ``id(stage)`` values could;
- the remote-grant ledger: clamped at zero, empty once the workload
  drains, and consistent with the live per-task grants throughout a run
  (``debug_invariants``);
- the replica choice for remote reads: the source with the most
  remaining headroom, not blindly ``locations[0]``;
- ε = ā/p̄ computed over the full candidate set, unchanged by barrier
  filtering (§3.3);
- the scheduler-side dirty-machine mirror.
"""

import gc

import pytest

from repro.cluster.cluster import Cluster
from repro.estimation.estimator import NoisyEstimator, ProfilingEstimator
from repro.estimation.tracker import ResourceTracker
from repro.resources import DEFAULT_MODEL
from repro.schedulers.tetris import GrantLedger, TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

from conftest import make_simple_job, make_task


def _workload(num_jobs=10, seed=7, horizon=200.0):
    return generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs,
            task_scale=0.04,
            arrival_horizon=horizon,
            seed=seed,
        )
    )


def _run_engine(
    trace,
    config,
    num_machines=8,
    seed=0,
    estimator=None,
    use_tracker=False,
    engine_config=None,
    decision_trace=None,
):
    """One end-to-end run; returns (placement key list, scheduler)."""
    cluster = Cluster(num_machines, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    tracker = ResourceTracker(cluster) if use_tracker else None
    scheduler = TetrisScheduler(config)
    engine = Engine(
        cluster,
        scheduler,
        jobs,
        estimator=estimator,
        tracker=tracker,
        config=(
            engine_config if engine_config is not None else EngineConfig(seed=seed)
        ),
        decision_trace=decision_trace,
    )
    engine.run()
    key = [
        (task.job.name, task.stage.name, task.index, machine_id, time)
        for (task, machine_id, time, _booked) in engine.placement_log
    ]
    return key, scheduler


def _assert_equivalent(config, **run_kwargs):
    """Scalar and vectorized runs of the same workload place identically."""
    trace = _workload(seed=run_kwargs.pop("trace_seed", 7))
    scalar_cfg = TetrisConfig(
        **{**_cfg_dict(config), "vectorized": False}
    )
    vector_cfg = TetrisConfig(
        **{**_cfg_dict(config), "vectorized": True}
    )
    scalar, scalar_sched = _run_engine(trace, scalar_cfg, **run_kwargs)
    assert not scalar_sched._use_vectorized
    # fresh estimator/tracker per run: the kwargs hold factories
    vector, vector_sched = _run_engine(trace, vector_cfg, **run_kwargs)
    assert len(scalar) > 0
    assert scalar == vector
    return scalar_sched, vector_sched


def _cfg_dict(config):
    from dataclasses import asdict

    return asdict(config)


class TestPlacementEquivalence:
    """The tentpole's equivalence bar: identical placements on fixed seeds."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_default_config(self, seed):
        trace = _workload(seed=3 + seed)
        scalar, _ = _run_engine(
            trace, TetrisConfig(vectorized=False), seed=seed
        )
        vector, sched = _run_engine(
            trace, TetrisConfig(vectorized=True), seed=seed
        )
        assert sched._use_vectorized
        assert len(scalar) > 0
        assert scalar == vector

    @pytest.mark.parametrize(
        "scorer", ["cosine", "l2norm-diff", "l2norm-ratio", "ffd-prod", "ffd-sum"]
    )
    def test_every_scorer(self, scorer):
        _assert_equivalent(TetrisConfig(scorer=scorer))

    def test_masked_dimensions(self):
        _assert_equivalent(TetrisConfig(considered_dims=("cpu", "mem")))

    @pytest.mark.parametrize("barrier", [0.0, 0.5])
    def test_barrier_knob(self, barrier):
        _assert_equivalent(TetrisConfig(barrier_knob=barrier))

    def test_no_fairness_heavy_remote_penalty(self):
        _assert_equivalent(
            TetrisConfig(fairness_knob=0.0, remote_penalty=0.3)
        )

    def test_starvation_reservations(self):
        _assert_equivalent(TetrisConfig(starvation_timeout=30.0))

    def test_progress_aware_srtf(self):
        _assert_equivalent(TetrisConfig(progress_aware_srtf=True))

    def test_noisy_estimator(self):
        trace = _workload(seed=5)
        scalar, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=False),
            estimator=NoisyEstimator(sigma=0.3, seed=4),
        )
        vector, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=True),
            estimator=NoisyEstimator(sigma=0.3, seed=4),
        )
        assert len(scalar) > 0
        assert scalar == vector

    def test_profiling_estimator_invalidates_cache(self):
        """Unstable estimates force cache rebuilds; placements must still
        match the scalar path exactly."""
        trace = _workload(seed=9)
        scalar, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=False),
            estimator=ProfilingEstimator(),
            use_tracker=True,
        )
        vector, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=True),
            estimator=ProfilingEstimator(),
            use_tracker=True,
        )
        assert len(scalar) > 0
        assert scalar == vector

    def test_failure_injection(self):
        trace = _workload(seed=13)
        engine_config = EngineConfig(task_failure_prob=0.1, seed=13)
        scalar, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=False, debug_invariants=True),
            engine_config=engine_config,
        )
        vector, _ = _run_engine(
            trace,
            TetrisConfig(vectorized=True, debug_invariants=True),
            engine_config=engine_config,
        )
        assert len(scalar) > 0
        assert scalar == vector


class TestEventStreamEquivalence:
    """PR 2 extends the equivalence bar: the vectorized path must emit
    the *same decision events* as the scalar oracle — every candidate
    score, rejection, filter and placement, in the same order, with
    bit-identical floats."""

    def _streams(
        self, config_kwargs, trace_seed=7, estimator_factory=None, **run_kwargs
    ):
        from repro.obs import DecisionTrace, validate_event

        trace = _workload(seed=trace_seed)
        streams = []
        for vectorized in (False, True):
            sink = DecisionTrace(max_events=1_000_000)
            _, sched = _run_engine(
                trace,
                TetrisConfig(vectorized=vectorized, **config_kwargs),
                decision_trace=sink,
                estimator=(
                    estimator_factory() if estimator_factory else None
                ),
                **run_kwargs,
            )
            assert sched._use_vectorized == vectorized
            events = sink.events()
            for event in events:
                validate_event(event)
            streams.append(events)
        return streams

    def test_default_config(self):
        scalar, vector = self._streams({})
        assert len(scalar) > 0
        assert scalar == vector
        types = {e["type"] for e in scalar}
        assert {"candidate", "fit_reject", "placement"} <= types

    @pytest.mark.parametrize(
        "scorer", ["cosine", "l2norm-diff", "l2norm-ratio", "ffd-sum"]
    )
    def test_every_batchable_scorer(self, scorer):
        scalar, vector = self._streams({"scorer": scorer})
        assert len(scalar) > 0
        assert scalar == vector

    def test_barrier_knob(self):
        scalar, vector = self._streams({"barrier_knob": 0.5})
        assert scalar == vector
        assert any(e["type"] == "barrier_filter" for e in scalar)

    def test_masked_dimensions(self):
        scalar, vector = self._streams(
            {"considered_dims": ("cpu", "mem")}
        )
        assert scalar == vector
        # fit rejections name only considered dimensions
        dims = {e["dim"] for e in scalar if e["type"] == "fit_reject"}
        assert dims <= {"cpu", "mem"}

    def test_starvation_reservations(self):
        scalar, vector = self._streams({"starvation_timeout": 30.0})
        assert scalar == vector

    def test_remote_penalty_and_no_fairness(self):
        scalar, vector = self._streams(
            {"fairness_knob": 0.0, "remote_penalty": 0.3}
        )
        assert scalar == vector
        assert any(
            e["type"] == "candidate" and e["remote"] for e in scalar
        )

    def test_unstable_estimator_with_tracker(self):
        scalar, vector = self._streams(
            {},
            trace_seed=9,
            estimator_factory=ProfilingEstimator,
            use_tracker=True,
        )
        assert len(scalar) > 0
        assert scalar == vector


class TestStageIdStability:
    def test_stage_ids_unique_under_gc_pressure(self):
        """CPython recycles object ids after collection; stage_id must not."""
        seen = set()
        for _ in range(50):
            job = make_simple_job(num_tasks=1)
            for stage in job.dag:
                assert stage.stage_id not in seen
                seen.add(stage.stage_id)
            del job
            gc.collect()

    def test_back_to_back_runs_never_alias_stage_state(self):
        """Two engine runs over fresh materializations of the same trace:
        the second run's stages must not inherit per-stage scheduler state
        from the first (the old ``id(stage)`` keying could, when the
        allocator reused addresses)."""
        trace = _workload(num_jobs=4, seed=21)
        first_ids = set()
        for attempt in range(2):
            cluster = Cluster(4, seed=0)
            jobs = materialize_trace(trace, cluster, seed=0)
            stage_ids = {
                stage.stage_id for job in jobs for stage in job.dag
            }
            if attempt == 0:
                first_ids = stage_ids
            else:
                assert stage_ids.isdisjoint(first_ids)
            scheduler = TetrisScheduler(
                TetrisConfig(starvation_timeout=30.0)
            )
            Engine(cluster, scheduler, jobs).run()
            # per-stage state holds only this run's stages
            assert set(scheduler._stage_last_placement) <= stage_ids
            del jobs, cluster
            gc.collect()


class TestRemoteLedger:
    def _drained_scheduler(self, vectorized):
        trace = _workload(num_jobs=6, seed=17)
        _, scheduler = _run_engine(
            trace,
            TetrisConfig(vectorized=vectorized, debug_invariants=True),
            use_tracker=True,
        )
        return scheduler

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_ledger_empty_after_drain(self, vectorized):
        """Every grant is released when its task finishes; float drift is
        clamped so the drained ledger is literally empty."""
        scheduler = self._drained_scheduler(vectorized)
        assert scheduler._remote_granted == {}
        assert scheduler._remote_by_task == {}

    def test_release_clamps_drift(self):
        scheduler = TetrisScheduler()
        # grants whose floats do not sum back exactly: 0.1 * 3 != 0.3
        scheduler._remote_granted = GrantLedger({5: 0.1 + 0.1 + 0.1})
        scheduler._remote_by_task = {1: [(5, 0.3)]}
        scheduler._release_remote_grants(1)
        assert scheduler._remote_granted == {}
        assert scheduler._remote_by_task == {}

    def test_invariant_catches_over_grant(self):
        scheduler = TetrisScheduler()
        scheduler._remote_granted = {2: 50.0}
        scheduler._remote_by_task = {1: [(2, 10.0)]}
        with pytest.raises(AssertionError, match="live"):
            scheduler.check_remote_ledger()

    def test_invariant_catches_negative(self):
        scheduler = TetrisScheduler()
        scheduler._remote_granted = {2: -1.0}
        with pytest.raises(AssertionError, match="negative"):
            scheduler.check_remote_ledger()


class TestRemoteSourceChoice:
    def test_picks_replica_with_most_headroom(self):
        cluster = Cluster(3, seed=0)
        scheduler = TetrisScheduler()
        scheduler.bind(cluster)
        # machine 1's outbound headroom is mostly granted away already
        scheduler._remote_granted = {1: 100.0}
        assert scheduler._pick_remote_source((1, 2)) == 2

    def test_single_replica_short_circuits(self):
        cluster = Cluster(3, seed=0)
        scheduler = TetrisScheduler()
        scheduler.bind(cluster)
        scheduler._remote_granted = {1: 1000.0}
        assert scheduler._pick_remote_source((1,)) == 1

    def test_tie_keeps_first_listed(self):
        cluster = Cluster(4, seed=0)
        scheduler = TetrisScheduler()
        scheduler.bind(cluster)
        assert scheduler._pick_remote_source((3, 2, 1)) == 3


class TestEpsilonSemantics:
    def _arrive(self, scheduler, *jobs):
        for job in jobs:
            job.arrive()
            scheduler.on_job_arrival(job, 0.0)

    def test_epsilon_over_full_pool_despite_barrier(self, monkeypatch):
        """§3.3: ε = ā/p̄ over *all* candidates.  Barrier filtering narrows
        the pool handed to the argmax, but must not move ε."""
        scheduler = TetrisScheduler(
            TetrisConfig(
                fairness_knob=0.0, barrier_knob=0.5, vectorized=False
            )
        )
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        barrier_job = make_simple_job(num_tasks=4, cpu=1, mem=1)
        other_job = make_simple_job(num_tasks=2, cpu=2, mem=4)
        self._arrive(scheduler, barrier_job, other_job)
        # push barrier_job's stage past the threshold
        stage = barrier_job.dag.roots()[0]
        for task in stage.tasks[:3]:
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
        scheduler.index.forget(stage.tasks[0])
        scheduler.index.forget(stage.tasks[1])
        scheduler.index.forget(stage.tasks[2])
        assert scheduler._barrier_stages([barrier_job, other_job])

        seen_epsilons = []
        real_pick = TetrisScheduler._pick_best

        def spy(self, candidates, epsilon=None):
            seen_epsilons.append(epsilon)
            return real_pick(self, candidates, epsilon)

        monkeypatch.setattr(TetrisScheduler, "_pick_best", spy)
        scheduler.schedule(0.0, machine_ids=[1])
        assert seen_epsilons, "no scheduling round ran"

        # the expected ε comes from the FULL candidate pool on a fresh,
        # identically-configured scheduler (same jobs, same free vector)
        fresh = TetrisScheduler(
            TetrisConfig(fairness_knob=0.0, barrier_knob=0.5, vectorized=False)
        )
        fresh.bind(cluster)
        self._arrive(fresh, barrier_job, other_job)
        for finished in stage.tasks[:3]:
            fresh.index.forget(finished)
        candidates = fresh._gather_candidates(
            1, fresh.candidate_jobs(), fresh.machine_free(1), 0.0
        )
        assert len(candidates) >= 2
        full_eps = fresh._epsilon(
            [c.alignment for c in candidates],
            [c.remaining_work for c in candidates],
        )
        barrier_only = [
            c
            for c in candidates
            if c.task.stage.stage_id
            in fresh._barrier_stages([barrier_job, other_job])
        ]
        narrow_eps = fresh._epsilon(
            [c.alignment for c in barrier_only],
            [c.remaining_work for c in barrier_only],
        )
        assert narrow_eps != full_eps  # the bug would have been invisible
        assert seen_epsilons[0] == pytest.approx(full_eps, abs=0.0)

    def test_pick_best_backcompat_derives_epsilon(self):
        """Callers with no wider pool still get the old behavior."""
        scheduler = TetrisScheduler()
        cluster = Cluster(1, seed=0)
        scheduler.bind(cluster)
        t1 = make_task(cpu=2, mem=4)
        t2 = make_task(cpu=1, mem=2)
        from repro.schedulers.tetris import _Candidate

        c1 = _Candidate(t1, None, alignment=0.8, remaining_work=10.0)
        c2 = _Candidate(t2, None, alignment=0.5, remaining_work=1.0)
        assert scheduler._pick_best([c1, c2]) is c2


class TestDirtyMachineMirror:
    def test_bind_marks_all_dirty(self):
        scheduler = TetrisScheduler()
        scheduler.bind(Cluster(4, seed=0))
        assert scheduler.consume_dirty_machines(None) is None
        # consumed: nothing left until something changes
        assert scheduler.consume_dirty_machines(None) == []

    def test_task_finish_dirties_only_its_machine(self):
        scheduler = TetrisScheduler()
        scheduler.bind(Cluster(4, seed=0))
        job = make_simple_job(num_tasks=2)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        assert scheduler.consume_dirty_machines(None) is None
        task = job.all_tasks()[0]
        task.mark_running(2, 0.0)
        task.mark_finished(1.0)
        scheduler.on_task_finished(task, 1.0)
        assert scheduler.consume_dirty_machines(None) == [2]

    def test_explicit_machine_ids_stay_authoritative(self):
        scheduler = TetrisScheduler()
        scheduler.bind(Cluster(4, seed=0))
        scheduler.consume_dirty_machines(None)  # drain the bind mark
        scheduler.mark_machine_dirty(1)
        scheduler.mark_machine_dirty(3)
        # the engine's own dirty set wins, and retires mirrored entries
        assert scheduler.consume_dirty_machines([1]) == [1]
        assert scheduler.consume_dirty_machines(None) == [3]

    def test_schedule_skips_clean_rounds(self):
        """With no dirty machines and no explicit ids, schedule() visits
        nothing (the dirty contract in action)."""
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        # memory is rigid (never capped at capacity), so this never fits
        job = make_simple_job(num_tasks=1, mem=10_000.0)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        assert scheduler.schedule(0.0) == []  # consumes the all-dirty mark
        visited = []
        original = TetrisScheduler._fill_machine

        def spy(self, machine_id, jobs, barrier, time):
            visited.append(machine_id)
            return original(self, machine_id, jobs, barrier, time)

        TetrisScheduler._fill_machine = spy
        try:
            scheduler.schedule(1.0)
        finally:
            TetrisScheduler._fill_machine = original
        assert visited == []


class TestProfilerPlumbing:
    def test_engine_hands_profiler_to_scheduler(self):
        from repro.profiling import Profiler

        trace = _workload(num_jobs=3, seed=31)
        cluster = Cluster(4, seed=0)
        jobs = materialize_trace(trace, cluster, seed=0)
        prof = Profiler()
        scheduler = TetrisScheduler()
        Engine(cluster, scheduler, jobs, profiler=prof).run()
        assert scheduler.profiler is prof
        assert prof.stats("engine.scheduler_round").count > 0
        assert prof.stats("tetris.schedule").count > 0
        # the scheduler's own time is contained in the engine's round
        assert (
            prof.stats("tetris.schedule").total
            <= prof.stats("engine.scheduler_round").total
        )
        assert "engine.scheduler_round" in prof.summary()


class TestPackedCacheInvalidation:
    def test_stable_finish_keeps_group_pack_for_peers(self):
        """Under a stable estimator, a completion must NOT invalidate the
        signature group: the surviving peers reuse the cached pack."""
        scheduler = TetrisScheduler()
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=2)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        first, second = job.all_tasks()
        scheduler.candidates.pack(first, 0)
        assert scheduler.candidates.stats["misses"] == 1
        first.mark_running(0, 0.0)
        first.mark_finished(1.0)
        scheduler.on_task_finished(first, 1.0)
        assert scheduler.candidates.num_groups == 1
        scheduler.candidates.pack(second, 0)
        assert scheduler.candidates.stats["hits"] == 1

    def test_stage_drain_drops_group_packs(self):
        scheduler = TetrisScheduler()
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=2)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        for task in job.all_tasks():
            scheduler.candidates.pack(task, 0)
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
            scheduler.on_task_finished(task, 1.0)
        assert scheduler.candidates.num_groups == 0

    def test_unstable_estimator_clears_whole_cache(self):
        scheduler = TetrisScheduler()
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        scheduler.estimator = ProfilingEstimator()
        job = make_simple_job(num_tasks=3)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        tasks = job.all_tasks()
        for task in tasks:
            scheduler.candidates.pack(task, 0)
        assert scheduler.candidates.num_groups >= 1
        tasks[0].mark_running(0, 0.0)
        tasks[0].mark_finished(1.0)
        scheduler.on_task_finished(tasks[0], 1.0)
        assert scheduler.candidates.num_groups == 0
        assert scheduler.candidates.stats["invalidations"] >= 1

    def test_cached_row_matches_scalar_normalization(self):
        scheduler = TetrisScheduler(
            TetrisConfig(considered_dims=("cpu", "mem"))
        )
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=1, cpu=2, mem=8)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        task = job.all_tasks()[0]
        capacity = cluster.machine(1).capacity
        booked, norm, remote = scheduler.candidates.pack(task, 1)
        expected = scheduler._masked(
            scheduler.booked_demands(task, 1)
        ).normalized_by(capacity)
        assert (norm == expected.data).all()
        assert booked.data.tolist() == scheduler.booked_demands(
            task, 1
        ).data.tolist()
        assert remote == (task.remote_input_mb(1) > 0)

    def test_warm_rows_match_single_pack(self):
        """The batched warm path and the single-pack path must produce
        byte-identical normalized rows."""
        scheduler = TetrisScheduler()
        cluster = Cluster(2, seed=0)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=3, cpu=3, mem=7)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        tasks = job.all_tasks()
        scheduler.candidates.warm(0, tasks)
        warmed = scheduler.candidates.pack(tasks[0], 0)
        fresh = TetrisScheduler()
        fresh.bind(cluster)
        fresh.on_job_arrival(job, 0.0)
        single = fresh.candidates.pack(tasks[0], 0)
        assert (warmed[1] == single[1]).all()
        assert warmed[0].data.tolist() == single[0].data.tolist()


class TestEpsilonConstant:
    def test_fits_uses_shared_epsilon(self):
        """The considered-dims fit check tolerates exactly EPSILON slack."""
        from repro.resources import EPSILON

        scheduler = TetrisScheduler(
            TetrisConfig(considered_dims=("cpu",))
        )
        scheduler.bind(Cluster(1, seed=0))
        free = DEFAULT_MODEL.vector(cpu=1.0)
        just_over = DEFAULT_MODEL.vector(cpu=1.0 + EPSILON / 2)
        way_over = DEFAULT_MODEL.vector(cpu=1.0 + 1e-6)
        assert scheduler._fits(just_over, free)
        assert not scheduler._fits(way_over, free)
