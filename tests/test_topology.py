"""Rack topology tests."""

import pytest

from repro.cluster.topology import Topology


class TestTopology:
    def test_rack_assignment(self):
        topo = Topology(10, machines_per_rack=4)
        assert topo.rack_of(0) == 0
        assert topo.rack_of(3) == 0
        assert topo.rack_of(4) == 1
        assert topo.rack_of(9) == 2
        assert topo.num_racks == 3

    def test_rack_members(self):
        topo = Topology(10, machines_per_rack=4)
        assert topo.rack_members(0) == [0, 1, 2, 3]
        assert topo.rack_members(2) == [8, 9]

    def test_same_rack(self):
        topo = Topology(8, machines_per_rack=4)
        assert topo.same_rack(0, 3)
        assert not topo.same_rack(3, 4)

    def test_locality_levels(self):
        topo = Topology(8, machines_per_rack=4)
        assert topo.locality_level(1, [1, 5]) == "node"
        assert topo.locality_level(2, [1, 5]) == "rack"
        assert topo.locality_level(7, [1, 2]) == "off-rack"

    def test_single_machine(self):
        topo = Topology(1)
        assert topo.num_racks == 1
        assert topo.rack_of(0) == 0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Topology(0)
        with pytest.raises(ValueError):
            Topology(4, machines_per_rack=0)
