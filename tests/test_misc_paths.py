"""Targeted tests for less-travelled paths."""

import numpy as np
import pytest

from repro.cli import build_parser
from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.metrics.collector import MetricsCollector
from repro.schedulers.flow_network import FlowNetworkScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.sim.fluid import FlowTable
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_simple_job, make_task


class TestFlowNetworkAggregatedRoute:
    def test_tasks_without_locality_still_placed(self):
        """Tasks with no replica preference route through the cluster
        aggregator and land wherever slots exist."""
        scheduler = FlowNetworkScheduler()
        cluster = Cluster(3, machines_per_rack=2)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=5, mem=2)  # no inputs at all
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        placements = scheduler.schedule(0.0)
        assert len(placements) == 5

    def test_overflow_from_full_preferred_machine(self):
        """When the data's host is out of slots, flow routes elsewhere."""
        scheduler = FlowNetworkScheduler(slot_mem_gb=2.0)
        cluster = Cluster(2, machines_per_rack=2)
        scheduler.bind(cluster)
        scheduler._slots_free[0] = 1  # data host nearly full
        tasks = [
            make_task(cpu=1, mem=2, cpu_work=5,
                      inputs=[TaskInput(50.0, (0,))])
            for _ in range(4)
        ]
        job = Job([Stage("map", tasks)])
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        placements = scheduler.schedule(0.0)
        assert len(placements) == 4
        machines = sorted(p.machine_id for p in placements)
        assert machines.count(0) == 1  # one local, rest overflowed
        assert machines.count(1) == 3


class TestMachineUsageSampling:
    def test_machine_usage_arrays(self):
        cluster = Cluster(2, machines_per_rack=2)
        collector = MetricsCollector(track_machine_usage=True)
        flows = FlowTable(
            cluster.model, [m.capacity.data for m in cluster.machines]
        )
        cluster.machine(0).place(make_task(mem=24))
        collector.sample(0.0, cluster, flows)
        collector.sample(1.0, cluster, flows)
        arrays = collector.machine_usage_arrays()
        assert arrays["mem"].shape == (2, 2)  # samples x machines
        assert arrays["mem"][0][0] == pytest.approx(0.5)
        assert arrays["mem"][0][1] == 0.0


class TestCliParser:
    @pytest.mark.parametrize("argv,command", [
        (["figures", "-o", "x"], "figures"),
        (["report", "-o", "y.md", "--seed", "7"], "report"),
        (["generate", "--kind", "bing", "-o", "z.json"], "generate"),
    ])
    def test_subcommands_parse(self, argv, command):
        args = build_parser().parse_args(argv)
        assert args.command == command

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.output == "report.md"
        assert not args.full


class TestFailuresWithTracker:
    def test_combined_machinery_consistent(self):
        cluster = Cluster(2, machines_per_rack=2, seed=2)
        tracker = ResourceTracker(
            cluster, TrackerConfig(report_period=1.0)
        )
        jobs = [make_simple_job(num_tasks=8, cpu=2, cpu_work=10,
                                arrival_time=float(i)) for i in range(3)]
        engine = Engine(
            cluster, TetrisScheduler(), jobs, tracker=tracker,
            config=EngineConfig(task_failure_prob=0.3, seed=2,
                                tracker_period=1.0),
        )
        engine.run()
        assert all(j.is_finished for j in jobs)
        assert engine.collector.task_failures > 0
        # tracker placement records all drained
        assert tracker._placements == {}
        for machine in cluster.machines:
            assert machine.allocated.is_zero()
