"""Figure 1 / Section 2.1 motivating-example tests — exact paper numbers."""

import pytest

from repro.experiments.motivating import (
    MotivatingExample,
    drf_schedule,
    packing_schedule,
)


class TestDRFSchedule:
    def test_all_jobs_finish_at_6t(self):
        schedule = drf_schedule()
        assert schedule.completion == {"A": 6, "B": 6, "C": 6}
        assert schedule.makespan == 6
        assert schedule.average_completion == pytest.approx(6.0)

    def test_drf_map_allocation_matches_paper(self):
        """DRF runs 6 A-maps and 2 maps each of B and C per round."""
        schedule = drf_schedule()
        first_round = schedule.rounds[0]
        assert first_round["A"][0] == 6
        assert first_round["B"][0] == 2
        assert first_round["C"][0] == 2

    def test_reduce_phase_shares_network(self):
        schedule = drf_schedule()
        reduce_rounds = schedule.rounds[3:]
        for r in reduce_rounds:
            assert r["A"][1] == r["B"][1] == r["C"][1] == 1


class TestPackingSchedule:
    def test_completions_are_2t_3t_4t(self):
        schedule = packing_schedule()
        assert sorted(schedule.completion.values()) == [2, 3, 4]

    def test_average_improves_50_percent(self):
        drf = drf_schedule()
        packing = packing_schedule()
        gain = 1 - packing.average_completion / drf.average_completion
        assert gain == pytest.approx(0.5)

    def test_makespan_improves_33_percent(self):
        drf = drf_schedule()
        packing = packing_schedule()
        gain = 1 - packing.makespan / drf.makespan
        assert gain == pytest.approx(1 / 3, abs=0.01)

    def test_every_job_finishes_no_later(self):
        drf = drf_schedule()
        packing = packing_schedule()
        for name in drf.completion:
            assert packing.completion[name] <= drf.completion[name]

    def test_reducers_overlap_next_jobs_mappers(self):
        """The packing gain comes from complementary phases co-running."""
        schedule = packing_schedule()
        overlap_rounds = [
            r for r in schedule.rounds
            if any(r[j][1] > 0 for j in "ABC")
            and any(r[j][0] > 0 for j in "ABC")
        ]
        assert overlap_rounds


class TestFragmentedDRF:
    def test_no_better_than_aggregated(self):
        """The footnote's point: splitting the cluster into machines can
        only hurt DRF (tasks must fit within one machine).  With our
        tie-breaking the example packs losslessly, so the schedules tie;
        the invariant that matters is 'never better'."""
        from repro.experiments.motivating import drf_schedule_fragmented

        flat = drf_schedule()
        frag = drf_schedule_fragmented()
        assert frag.makespan >= flat.makespan
        for name in flat.completion:
            assert frag.completion[name] >= 0
        assert frag.average_completion >= flat.average_completion

    def test_respects_per_machine_capacity(self):
        from repro.experiments.motivating import drf_schedule_fragmented

        example = MotivatingExample()
        frag = drf_schedule_fragmented(example, num_machines=3)
        # with 1/3-capacity machines, no single round may run a mix that
        # could not be partitioned; total per round still bounded
        for r in frag.rounds:
            used_cores = sum(
                r[j.name][0] * j.phases[0].demand[0]
                + r[j.name][1] * j.phases[1].demand[0]
                for j in example.jobs
            )
            assert used_cores <= example.capacity[0] + 1e-9

    def test_overfragmented_cluster_is_infeasible(self):
        """Split far enough, no machine can host a 3-core map or a
        1 Gbps reducer at all — the runner reports infeasibility instead
        of looping."""
        from repro.experiments.motivating import drf_schedule_fragmented

        with pytest.raises(RuntimeError, match="infeasible"):
            drf_schedule_fragmented(num_machines=9)


class TestResourceFeasibility:
    @pytest.mark.parametrize("make", [drf_schedule, packing_schedule])
    def test_no_round_exceeds_capacity(self, make):
        example = MotivatingExample()
        schedule = make(example)
        for r in schedule.rounds:
            used = [0.0, 0.0, 0.0]
            for job in example.jobs:
                for phase_idx, count in enumerate(r[job.name]):
                    demand = job.phases[phase_idx].demand
                    for k in range(3):
                        used[k] += demand[k] * count
            for k in range(3):
                assert used[k] <= example.capacity[k] + 1e-9

    @pytest.mark.parametrize("make", [drf_schedule, packing_schedule])
    def test_all_tasks_run_exactly_once(self, make):
        example = MotivatingExample()
        schedule = make(example)
        for job in example.jobs:
            for phase_idx, phase in enumerate(job.phases):
                ran = sum(r[job.name][phase_idx] for r in schedule.rounds)
                assert ran == phase.count
