"""Workload generator tests: structure and the paper's statistics."""

import numpy as np
import pytest

from repro.analysis.correlation import demand_correlation_matrix
from repro.analysis.heatmap import demand_cov
from repro.cluster.cluster import Cluster
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import (
    JOB_CLASSES,
    FacebookTraceConfig,
    WorkloadSuiteConfig,
    generate_facebook_trace,
    generate_workload_suite,
)


class TestWorkloadSuite:
    def test_job_count_and_sorted_arrivals(self):
        trace = generate_workload_suite(WorkloadSuiteConfig(num_jobs=30))
        assert len(trace) == 30
        arrivals = [j.arrival_time for j in trace]
        assert arrivals == sorted(arrivals)

    def test_all_jobs_are_map_reduce(self):
        trace = generate_workload_suite(WorkloadSuiteConfig(num_jobs=10))
        for job in trace:
            assert [s.name for s in job.stages] == ["map", "reduce"]
            assert job.stages[1].parents == ["map"]
            assert job.stages[1].input_kind == "shuffle"

    def test_task_scale(self):
        big = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=20, task_scale=1.0, seed=5)
        )
        small = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=20, task_scale=0.1, seed=5)
        )
        big_tasks = sum(s.num_tasks for j in big for s in j.stages)
        small_tasks = sum(s.num_tasks for j in small for s in j.stages)
        assert big_tasks > 5 * small_tasks

    def test_uses_all_job_classes(self):
        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=100, seed=1)
        )
        seen = {j.name.rsplit("-", 1)[0] for j in trace}
        expected = {name for name, _, _ in JOB_CLASSES}
        assert seen == expected

    def test_deterministic_given_seed(self):
        a = generate_workload_suite(WorkloadSuiteConfig(num_jobs=10, seed=2))
        b = generate_workload_suite(WorkloadSuiteConfig(num_jobs=10, seed=2))
        assert [j.name for j in a] == [j.name for j in b]
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_selectivity_shapes_output(self):
        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=60, seed=3)
        )
        for job in trace:
            map_stage = job.stages[0]
            if job.name.startswith("large-highly-selective"):
                assert map_stage.write_mb_per_task == pytest.approx(
                    map_stage.input_mb_per_task * 0.1
                )
            if job.name.startswith("medium-inflating"):
                assert map_stage.write_mb_per_task == pytest.approx(
                    map_stage.input_mb_per_task * 2.0
                )


class TestFacebookTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_facebook_trace(
            FacebookTraceConfig(num_jobs=200, seed=0)
        )

    @pytest.fixture(scope="class")
    def tasks(self, trace):
        cluster = Cluster(50)
        jobs = materialize_trace(trace, cluster, seed=0)
        return [t for j in jobs for t in j.all_tasks()]

    def test_job_count(self, trace):
        assert len(trace) == 200

    def test_heavy_tailed_sizes(self, trace):
        sizes = [j.stages[0].num_tasks for j in trace]
        assert min(sizes) < 10
        assert max(sizes) > 100

    def test_templates_recur(self, trace):
        templates = [j.template for j in trace]
        assert len(set(templates)) <= 20
        assert len(set(templates)) > 3

    def test_demand_diversity_matches_paper(self, tasks):
        """Section 2.2.2: CoVs of ~1.52/0.77/1.74/1.35; we require the
        generated population to be strongly diverse in the same ordering
        band (clamping compresses the extremes a little)."""
        cov = demand_cov(tasks)
        assert cov["cores"] > 0.7
        assert cov["memory"] > 0.4
        assert cov["disk"] > 0.7
        assert cov["network"] > 0.6

    def test_cross_resource_correlation_low(self, tasks):
        """Table 2: no strong correlation between any resource pair."""
        corr = demand_correlation_matrix(tasks)
        for pair, value in corr.items():
            assert abs(value) < 0.55, (pair, value)

    def test_dag_shapes_present(self, trace):
        depths = {len(j.stages) for j in trace}
        assert 1 in depths and 2 in depths and 3 in depths

    def test_runs_end_to_end(self):
        from repro.experiments.harness import ExperimentConfig, run_trace
        from repro.schedulers.tetris import TetrisScheduler

        trace = generate_facebook_trace(
            FacebookTraceConfig(num_jobs=8, arrival_horizon=200,
                                max_map_tasks=30, seed=4)
        )
        result = run_trace(
            trace, TetrisScheduler(), ExperimentConfig(num_machines=10)
        )
        assert len(result.collector.jobs) == 8
