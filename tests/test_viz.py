"""SVG chart tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.charts import BarChart, LineChart, _nice_ticks


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 100.0)
        assert ticks[0] <= 0.0 + 1e-9
        assert ticks[-1] >= 100.0 - 1e-9

    def test_reasonable_count(self):
        assert 3 <= len(_nice_ticks(0, 1)) <= 8
        assert 3 <= len(_nice_ticks(-50, 1234)) <= 8

    def test_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)

    def test_small_values(self):
        ticks = _nice_ticks(0.0, 0.003)
        assert ticks[-1] >= 0.003 - 1e-12


class TestLineChart:
    def make(self):
        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add_series("a", [(0, 0), (1, 10), (2, 5)])
        chart.add_series("b", [(0, 3), (2, 8)])
        return chart

    def test_renders_valid_xml(self):
        root = parse(self.make().render())
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        svg = self.make().render()
        assert svg.count("<polyline") == 2

    def test_legend_and_labels_present(self):
        svg = self.make().render()
        for text in ("a", "b", "t", "x", "y"):
            assert text in svg

    def test_requires_two_points(self):
        chart = LineChart()
        with pytest.raises(ValueError):
            chart.add_series("tiny", [(0, 0)])

    def test_requires_series(self):
        with pytest.raises(ValueError):
            LineChart().render()

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        self.make().save(path)
        assert parse(path.read_text()) is not None

    def test_distinct_series_colors(self):
        chart = self.make()
        colors = {s.color for s in chart.series}
        assert len(colors) == 2

    def test_escapes_markup(self):
        chart = LineChart(title="a < b & c")
        chart.add_series("s", [(0, 0), (1, 1)])
        root = parse(chart.render())
        assert root is not None


class TestBarChart:
    def make(self):
        chart = BarChart(["A", "B", "C"], title="bars")
        chart.add_group("g1", [1.0, 2.0, 3.0])
        chart.add_group("g2", [3.0, 2.0, 1.0])
        return chart

    def test_renders_valid_xml(self):
        assert parse(self.make().render()) is not None

    def test_bar_count(self):
        svg = self.make().render()
        # 6 bars + background + frame + 2 legend swatches
        assert svg.count("<rect") == 6 + 2 + 2

    def test_group_length_validated(self):
        chart = BarChart(["A", "B"])
        with pytest.raises(ValueError):
            chart.add_group("bad", [1.0])

    def test_needs_categories_and_groups(self):
        with pytest.raises(ValueError):
            BarChart([])
        with pytest.raises(ValueError):
            BarChart(["A"]).render()


class TestFigures:
    def test_fig1_renders(self, tmp_path):
        from repro.experiments.figures import fig1_completion_times

        path = fig1_completion_times(tmp_path / "fig1.svg")
        svg = path.read_text()
        assert parse(svg) is not None
        assert "DRF" in svg and "packing" in svg
