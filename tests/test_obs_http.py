"""The live telemetry plane (repro.obs.http).

Every test binds to port 0 — the OS hands out an ephemeral port and
:meth:`TelemetryServer.start` reports it, so tests never race over a
fixed port.  Requests go through urllib against the real socket: these
are end-to-end checks of routing, status codes, content types and
payload shapes, not handler unit tests.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    DecisionTrace,
    Registry,
    TelemetryServer,
    parse_exposition,
)


def _get(url, timeout=5.0):
    """(status code, content-type, body text) — HTTPError included."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.headers.get("Content-Type"), (
                resp.read().decode("utf-8")
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers.get("Content-Type"), (
            exc.read().decode("utf-8")
        )


@pytest.fixture
def registry():
    reg = Registry()
    reg.counter("demo_total", "a counter").inc(7)
    reg.gauge("demo_depth", "a gauge", labelnames=("q",)).labels(
        q="high"
    ).set(2.5)
    return reg


class TestLifecycle:
    def test_ephemeral_port_is_reported(self):
        server = TelemetryServer(port=0)
        host, port = server.start()
        try:
            assert host == "127.0.0.1"
            assert port > 0
            assert server.url == f"http://{host}:{port}"
        finally:
            server.stop()

    def test_address_requires_running_server(self):
        server = TelemetryServer(port=0)
        with pytest.raises(RuntimeError, match="not running"):
            server.address
        server.start()
        server.stop()
        with pytest.raises(RuntimeError, match="not running"):
            server.address

    def test_stop_is_idempotent_and_start_rebinds(self):
        server = TelemetryServer(port=0)
        server.start()
        server.stop()
        server.stop()  # no-op
        server.start()  # fresh ephemeral port
        server.stop()

    def test_double_start_rejected(self):
        with TelemetryServer(port=0) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_context_manager(self, registry):
        with TelemetryServer(port=0, registry=registry) as server:
            code, _, _ = _get(server.url + "/metrics")
            assert code == 200


class TestMetricsEndpoint:
    def test_exposition_parses_back(self, registry):
        with TelemetryServer(port=0, registry=registry) as server:
            code, ctype, body = _get(server.url + "/metrics")
        assert code == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        parsed = parse_exposition(body)
        assert parsed["demo_total"] == {"": 7.0}
        assert parsed["demo_depth"] == {"q=high": 2.5}

    def test_no_registry_renders_empty(self):
        with TelemetryServer(port=0) as server:
            code, _, body = _get(server.url + "/metrics")
        assert code == 200
        assert body == ""


class TestHealthEndpoint:
    def test_healthy_is_200(self):
        payload = {"healthy": True, "status": "ok"}
        with TelemetryServer(port=0, health_fn=lambda: payload) as server:
            code, ctype, body = _get(server.url + "/healthz")
        assert code == 200
        assert ctype == "application/json"
        assert json.loads(body) == payload

    def test_unhealthy_is_503(self):
        payload = {"healthy": False, "status": "stalled"}
        with TelemetryServer(port=0, health_fn=lambda: payload) as server:
            code, _, body = _get(server.url + "/healthz")
        assert code == 503
        assert json.loads(body)["status"] == "stalled"

    def test_unwired_health_is_404(self):
        with TelemetryServer(port=0) as server:
            code, _, _ = _get(server.url + "/healthz")
        assert code == 404

    def test_health_fn_exception_is_500_not_fatal(self):
        def boom():
            raise RuntimeError("sensor exploded")

        with TelemetryServer(port=0, health_fn=boom) as server:
            code, _, body = _get(server.url + "/healthz")
            assert code == 500
            assert "sensor exploded" in json.loads(body)["error"]
            # the server survives the handler failure
            code, _, _ = _get(server.url + "/")
            assert code == 200


class TestStatusEndpoint:
    def test_status_payload(self):
        snap = {"phase": "active", "placements": 42}
        with TelemetryServer(port=0, status_fn=lambda: snap) as server:
            code, _, body = _get(server.url + "/status")
        assert code == 200
        assert json.loads(body) == snap

    def test_unwired_status_is_404(self):
        with TelemetryServer(port=0) as server:
            code, _, _ = _get(server.url + "/status")
        assert code == 404


class TestTraceEndpoint:
    def _trace(self, n=10):
        trace = DecisionTrace(max_events=1000)
        for i in range(n):
            trace.emit(
                "round", time=float(i), machines=4,
                placements=i, queue_depth=0,
            )
        return trace

    def test_last_k_events(self):
        with TelemetryServer(port=0, trace=self._trace(10)) as server:
            code, _, body = _get(server.url + "/debug/trace?n=3")
        assert code == 200
        payload = json.loads(body)
        assert [e["time"] for e in payload["events"]] == [7.0, 8.0, 9.0]
        assert payload["emitted"] == 10
        assert payload["buffered"] == 10
        assert payload["dropped"] == 0

    def test_default_window(self):
        with TelemetryServer(port=0, trace=self._trace(5)) as server:
            code, _, body = _get(server.url + "/debug/trace")
        assert code == 200
        assert len(json.loads(body)["events"]) == 5

    def test_no_trace_yields_note_not_404(self):
        with TelemetryServer(port=0) as server:
            code, _, body = _get(server.url + "/debug/trace")
        assert code == 200
        payload = json.loads(body)
        assert payload["events"] == []
        assert "not enabled" in payload["note"]

    def test_bad_n_is_400(self):
        with TelemetryServer(port=0, trace=self._trace(3)) as server:
            code, _, body = _get(server.url + "/debug/trace?n=banana")
        assert code == 400
        assert "integer" in json.loads(body)["error"]


class TestRouting:
    def test_index_lists_endpoints(self):
        with TelemetryServer(port=0) as server:
            code, _, body = _get(server.url + "/")
        assert code == 200
        endpoints = json.loads(body)["endpoints"]
        assert "/metrics" in endpoints
        assert "/healthz" in endpoints

    def test_unknown_route_is_404(self):
        with TelemetryServer(port=0) as server:
            code, _, body = _get(server.url + "/nope")
        assert code == 404
        assert "/nope" in json.loads(body)["error"]

    def test_trailing_slash_is_tolerated(self, registry):
        with TelemetryServer(port=0, registry=registry) as server:
            code, _, _ = _get(server.url + "/metrics/")
        assert code == 200

    def test_concurrent_scrapes(self, registry):
        # ThreadingHTTPServer: parallel requests must all land
        import threading

        results = []
        with TelemetryServer(port=0, registry=registry) as server:
            def scrape():
                results.append(_get(server.url + "/metrics")[0])

            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
        assert results == [200] * 8


class TestProfileEndpoint:
    def test_no_profiler_yields_note_not_404(self):
        with TelemetryServer(port=0) as server:
            code, ctype, body = _get(server.url + "/debug/profile")
        assert code == 200
        assert ctype == "application/json"
        payload = json.loads(body)
        assert payload["enabled"] is False
        assert payload["phases"] == {}
        assert "not enabled" in payload["note"]

    def test_wired_profile_fn_payload_passes_through(self):
        snapshot = {
            "enabled": True,
            "phase": "replay",
            "phases": {
                "tetris.schedule": {
                    "count": 3,
                    "total_seconds": 0.006,
                    "self_seconds": 0.006,
                    "mean_ms": 2.0,
                },
            },
        }
        with TelemetryServer(port=0, profile_fn=lambda: snapshot) as server:
            code, _, body = _get(server.url + "/debug/profile")
        assert code == 200
        payload = json.loads(body)
        assert payload["enabled"] is True
        assert payload["phases"]["tetris.schedule"]["count"] == 3

    def test_profile_fn_error_is_500_not_crash(self):
        def boom():
            raise ValueError("profiler detached")

        with TelemetryServer(port=0, profile_fn=boom) as server:
            code, _, body = _get(server.url + "/debug/profile")
            # the server thread must survive the failed request
            assert _get(server.url + "/")[0] == 200
        assert code == 500
        assert "profiler detached" in json.loads(body)["error"]

    def test_index_lists_profile_endpoint(self):
        with TelemetryServer(port=0) as server:
            _, _, body = _get(server.url + "/")
        assert "/debug/profile" in json.loads(body)["endpoints"]
