"""Failure-injection tests: failed attempts re-run and everything else
stays consistent (the paper's simulator replays per-task failure
probabilities)."""

import pytest

from repro.analysis.model import audit_engine
from repro.cluster.cluster import Cluster
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.task import TaskState

from conftest import make_simple_job, make_two_stage_job


def run_with_failures(scheduler, jobs, prob, num_machines=2, seed=0):
    cluster = Cluster(num_machines, machines_per_rack=2, seed=seed)
    engine = Engine(
        cluster, scheduler, jobs,
        config=EngineConfig(task_failure_prob=prob, seed=seed),
    )
    engine.run()
    return engine


class TestFailureInjection:
    def test_everything_finishes_despite_failures(self):
        jobs = [make_simple_job(num_tasks=10, cpu=2, cpu_work=10,
                                arrival_time=float(i)) for i in range(3)]
        engine = run_with_failures(TetrisScheduler(), jobs, prob=0.3)
        assert all(j.is_finished for j in jobs)
        assert engine.collector.task_failures > 0

    def test_attempt_counters(self):
        jobs = [make_simple_job(num_tasks=20, cpu=1, cpu_work=5)]
        engine = run_with_failures(TetrisScheduler(), jobs, prob=0.4)
        attempts = [t.attempts for t in jobs[0].all_tasks()]
        assert max(attempts) >= 1
        assert all(
            a < engine.config.max_task_attempts for a in attempts
        )

    def test_failures_prolong_jobs(self):
        jobs_a = [make_simple_job(num_tasks=16, cpu=4, cpu_work=40)]
        clean = run_with_failures(TetrisScheduler(), jobs_a, prob=0.0)
        jobs_b = [make_simple_job(num_tasks=16, cpu=4, cpu_work=40)]
        flaky = run_with_failures(TetrisScheduler(), jobs_b, prob=0.5)
        assert (
            flaky.collector.makespan() > clean.collector.makespan()
        )

    def test_machines_clean_after_failures(self):
        jobs = [make_two_stage_job(num_map=6, num_reduce=2)]
        engine = run_with_failures(TetrisScheduler(), jobs, prob=0.3)
        for machine in engine.cluster.machines:
            assert machine.num_running == 0
            assert machine.allocated.is_zero()
        assert engine.flows.num_active == 0

    def test_schedule_still_feasible_under_failures(self):
        jobs = [make_two_stage_job(num_map=4, num_reduce=2,
                                   arrival_time=2.0 * i)
                for i in range(3)]
        engine = run_with_failures(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)), jobs,
            prob=0.25,
        )
        report = audit_engine(engine)
        # only the *successful* attempt is in the placement log's
        # finish_time window, so feasibility checks still apply
        assert not report.of_kind("execution")
        assert not report.of_kind("precedence")

    @pytest.mark.parametrize("scheduler_factory", [
        SlotFairScheduler, CapacityScheduler,
    ])
    def test_slot_accounting_survives_failures(self, scheduler_factory):
        scheduler = scheduler_factory()
        jobs = [make_simple_job(num_tasks=12, mem=2, cpu_work=5)]
        engine = run_with_failures(scheduler, jobs, prob=0.4)
        assert all(j.is_finished for j in jobs)
        total = sum(scheduler._slots_free.values())
        assert total == scheduler.total_slots()

    def test_zero_probability_means_no_failures(self):
        jobs = [make_simple_job(num_tasks=10)]
        engine = run_with_failures(TetrisScheduler(), jobs, prob=0.0)
        assert engine.collector.task_failures == 0
        assert all(t.attempts == 0 for t in jobs[0].all_tasks())
