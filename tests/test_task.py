"""Task model tests."""

import pytest

from repro.resources import DEFAULT_MODEL
from repro.workload.task import Task, TaskInput, TaskState, TaskWork

from conftest import make_task


class TestTaskLifecycle:
    def test_initial_state_blocked(self):
        assert make_task().state is TaskState.BLOCKED

    def test_transitions(self):
        task = make_task()
        task.mark_runnable()
        assert task.state is TaskState.RUNNABLE
        task.mark_running(3, 10.0)
        assert task.state is TaskState.RUNNING
        assert task.machine_id == 3
        task.mark_finished(25.0)
        assert task.state is TaskState.FINISHED
        assert task.duration == pytest.approx(15.0)

    def test_running_requires_runnable(self):
        with pytest.raises(RuntimeError):
            make_task().mark_running(0, 0.0)

    def test_finish_requires_running(self):
        task = make_task()
        task.mark_runnable()
        with pytest.raises(RuntimeError):
            task.mark_finished(1.0)

    def test_duration_none_until_finished(self):
        assert make_task().duration is None

    def test_unique_ids(self):
        assert make_task().task_id != make_task().task_id


class TestTaskInputs:
    def test_input_mb(self):
        task = make_task(inputs=[TaskInput(100, (0,)), TaskInput(50, (1,))])
        assert task.input_mb == 150

    def test_remote_input_mb(self):
        task = make_task(inputs=[TaskInput(100, (0,)), TaskInput(50, (1,))])
        assert task.remote_input_mb(0) == 50
        assert task.remote_input_mb(2) == 150

    def test_is_local_to(self):
        inp = TaskInput(10, (3, 5))
        assert inp.is_local_to(3)
        assert not inp.is_local_to(4)


class TestPlacementAdjustedDemands:
    def test_local_placement_drops_network(self):
        task = make_task(diskr=50, netin=50,
                         inputs=[TaskInput(100, (0, 1))])
        d = task.demands_on(0)
        assert d.get("netin") == 0
        assert d.get("diskr") == 50

    def test_remote_placement_drops_disk_read(self):
        task = make_task(diskr=50, netin=50,
                         inputs=[TaskInput(100, (0, 1))])
        d = task.demands_on(5)
        assert d.get("netin") == 50
        assert d.get("diskr") == 0

    def test_mixed_placement_keeps_both(self):
        task = make_task(diskr=50, netin=50,
                         inputs=[TaskInput(100, (0,)), TaskInput(100, (1,))])
        d = task.demands_on(0)
        assert d.get("netin") == 50
        assert d.get("diskr") == 50

    def test_netout_always_cleared(self):
        task = make_task(netout=99, inputs=[TaskInput(10, (0,))])
        assert task.demands_on(0).get("netout") == 0
        assert task.demands_on(1).get("netout") == 0


class TestNominalDuration:
    def test_cpu_bound(self):
        task = make_task(cpu=2, cpu_work=30)
        assert task.nominal_duration() == pytest.approx(15.0)

    def test_io_bound(self):
        task = make_task(cpu=2, cpu_work=10, diskr=50,
                         inputs=[TaskInput(500, (0,))])
        assert task.nominal_duration() == pytest.approx(10.0)

    def test_write_bound(self):
        task = make_task(cpu=1, cpu_work=1, diskw=10, write_mb=100)
        assert task.nominal_duration() == pytest.approx(10.0)

    def test_duration_hint_overrides(self):
        task = Task(DEFAULT_MODEL.vector(cpu=1), TaskWork(100),
                    duration_hint=7.0)
        assert task.nominal_duration() == 7.0

    def test_empty_task_zero_duration(self):
        task = Task(DEFAULT_MODEL.vector(cpu=1), TaskWork())
        assert task.nominal_duration() == 0.0


class TestTaskWork:
    def test_scaled(self):
        work = TaskWork(10.0, 4.0).scaled(2.0)
        assert work.cpu_core_seconds == 20.0
        assert work.write_mb == 8.0
