"""ResourceModel / ResourceVector unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.resources import (
    DEFAULT_MODEL,
    FB_MACHINE_CAPACITY,
    ResourceModel,
    ResourceVector,
)


def vec(**kw):
    return DEFAULT_MODEL.vector(**kw)


class TestResourceModel:
    def test_default_model_dimensions(self):
        assert DEFAULT_MODEL.names == (
            "cpu", "mem", "diskr", "diskw", "netin", "netout",
        )
        assert DEFAULT_MODEL.dims == 6

    def test_memory_is_the_only_rigid_dimension(self):
        assert DEFAULT_MODEL.rigid_names() == ("mem",)
        assert set(DEFAULT_MODEL.fluid_names()) == {
            "cpu", "diskr", "diskw", "netin", "netout",
        }

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ResourceModel(("a", "a"))

    def test_unknown_fluid_name_rejected(self):
        with pytest.raises(ValueError):
            ResourceModel(("a", "b"), fluid=("c",))

    def test_vector_constructor_unknown_name(self):
        with pytest.raises(KeyError):
            DEFAULT_MODEL.vector(gpu=1)

    def test_zeros(self):
        assert DEFAULT_MODEL.zeros().is_zero()

    def test_from_mapping(self):
        v = DEFAULT_MODEL.from_mapping({"cpu": 2, "mem": 4})
        assert v.get("cpu") == 2 and v.get("mem") == 4

    def test_equality_and_hash(self):
        m1 = ResourceModel(("a", "b"), fluid=("b",))
        m2 = ResourceModel(("a", "b"), fluid=("b",))
        m3 = ResourceModel(("a", "b"))
        assert m1 == m2 and hash(m1) == hash(m2)
        assert m1 != m3


class TestResourceVectorArithmetic:
    def test_add_sub(self):
        a = vec(cpu=2, mem=4)
        b = vec(cpu=1, mem=1)
        assert (a + b).get("cpu") == 3
        assert (a - b).get("mem") == 3

    def test_scale(self):
        assert (vec(cpu=2) * 2.5).get("cpu") == 5.0
        assert (2.5 * vec(cpu=2)).get("cpu") == 5.0

    def test_inplace(self):
        a = vec(cpu=2)
        a.add_inplace(vec(cpu=3))
        assert a.get("cpu") == 5
        a.sub_inplace(vec(cpu=1))
        assert a.get("cpu") == 4

    def test_cross_model_arithmetic_rejected(self):
        other = ResourceModel(("x", "y"))
        with pytest.raises(ValueError):
            vec(cpu=1) + other.zeros()

    def test_clamp_nonnegative(self):
        v = vec(cpu=1) - vec(cpu=3)
        assert v.get("cpu") == -2
        assert v.clamp_nonnegative().get("cpu") == 0

    def test_elementwise_min_max(self):
        a = vec(cpu=1, mem=5)
        b = vec(cpu=3, mem=2)
        assert a.elementwise_min(b).as_dict()["cpu"] == 1
        assert a.elementwise_min(b).as_dict()["mem"] == 2
        assert a.elementwise_max(b).as_dict()["cpu"] == 3
        assert a.elementwise_max(b).as_dict()["mem"] == 5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ResourceVector(DEFAULT_MODEL, np.zeros(3))


class TestResourceVectorPredicates:
    def test_fits_in(self):
        assert vec(cpu=2, mem=2).fits_in(vec(cpu=2, mem=4))
        assert not vec(cpu=3).fits_in(vec(cpu=2, mem=100))

    def test_fits_in_tolerates_float_noise(self):
        assert vec(cpu=2.0 + 1e-12).fits_in(vec(cpu=2.0))

    def test_is_zero(self):
        assert DEFAULT_MODEL.zeros().is_zero()
        assert not vec(cpu=0.1).is_zero()

    def test_is_nonnegative(self):
        assert vec(cpu=1).is_nonnegative()
        assert not (vec(cpu=1) - vec(cpu=2)).is_nonnegative()

    def test_equality(self):
        assert vec(cpu=1) == vec(cpu=1)
        assert vec(cpu=1) != vec(cpu=2)


class TestScoring:
    def test_dot(self):
        assert vec(cpu=2, mem=3).dot(vec(cpu=4, mem=1)) == 11

    def test_normalized_by(self):
        cap = vec(cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125)
        n = vec(cpu=8, mem=12).normalized_by(cap)
        assert n.get("cpu") == pytest.approx(0.5)
        assert n.get("mem") == pytest.approx(0.25)

    def test_normalized_by_zero_capacity_dim(self):
        cap = vec(cpu=10)  # all other dims zero
        n = vec(cpu=5, mem=100).normalized_by(cap)
        assert n.get("cpu") == pytest.approx(0.5)
        assert n.get("mem") == 0.0

    def test_dominant_share(self):
        cap = vec(cpu=10, mem=100)
        assert vec(cpu=5, mem=20).dominant_share(cap) == pytest.approx(0.5)

    def test_total_and_norm(self):
        v = vec(cpu=3, mem=4)
        assert v.total() == 7
        assert v.norm() == pytest.approx(5.0)

    def test_repr_mentions_nonzero_dims(self):
        assert "cpu=2" in repr(vec(cpu=2))


@st.composite
def vectors(draw):
    values = draw(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=6,
            max_size=6,
        )
    )
    return ResourceVector(DEFAULT_MODEL, np.array(values))


class TestVectorProperties:
    @given(vectors(), vectors())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(vectors(), vectors())
    def test_add_then_subtract_roundtrips(self, a, b):
        assert (a + b) - b == a

    @given(vectors())
    def test_self_always_fits_in_self(self, a):
        assert a.fits_in(a)

    @given(vectors(), vectors())
    def test_min_fits_in_both(self, a, b):
        m = a.elementwise_min(b)
        assert m.fits_in(a) and m.fits_in(b)

    @given(vectors())
    def test_normalization_bounded_by_dominant_share(self, a):
        cap = FB_MACHINE_CAPACITY
        n = a.normalized_by(cap)
        assert max(n.data) == pytest.approx(a.dominant_share(cap))

    @given(vectors(), vectors())
    def test_dot_is_symmetric(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-9)
