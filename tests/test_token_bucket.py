"""Token bucket / I/O gate enforcement tests (Section 4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.enforcement.token_bucket import IoGate, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=10, burst=100)
        assert bucket.try_consume(100, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refill_at_rate(self):
        bucket = TokenBucket(rate=10, burst=100)
        bucket.try_consume(100, now=0.0)
        assert not bucket.try_consume(50, now=4.0)  # only 40 accrued
        assert bucket.try_consume(50, now=5.0)

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=10, burst=50)
        assert not bucket.try_consume(60, now=1000.0)
        assert bucket.try_consume(50, now=1000.0)

    def test_time_until_available(self):
        bucket = TokenBucket(rate=10, burst=100)
        bucket.try_consume(100, now=0.0)
        assert bucket.time_until_available(30, now=0.0) == pytest.approx(3.0)
        assert bucket.time_until_available(0, now=0.0) == 0.0

    def test_oversized_request_rejected(self):
        bucket = TokenBucket(rate=10, burst=50)
        with pytest.raises(ValueError):
            bucket.time_until_available(60, now=0.0)

    def test_time_monotonicity_enforced(self):
        bucket = TokenBucket(rate=10, burst=50)
        bucket.refill(5.0)
        with pytest.raises(ValueError):
            bucket.refill(4.0)

    def test_set_rate(self):
        bucket = TokenBucket(rate=10, burst=100)
        bucket.try_consume(100, now=0.0)
        bucket.set_rate(50)
        assert bucket.try_consume(50, now=1.0)

    @pytest.mark.parametrize("rate,burst", [(0, 10), (-1, 10), (10, 0)])
    def test_invalid_params(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10),  # dt
                st.floats(min_value=0, max_value=50),     # request
            ),
            max_size=30,
        )
    )
    def test_never_over_delivers(self, steps):
        """Total granted never exceeds burst + rate * elapsed."""
        bucket = TokenBucket(rate=5, burst=50)
        now, granted = 0.0, 0.0
        for dt, request in steps:
            now += dt
            if bucket.try_consume(request, now):
                granted += request
        assert granted <= 50 + 5 * now + 1e-6


class TestIoGate:
    def test_grants_within_budget(self):
        gate = IoGate(TokenBucket(rate=10, burst=100))
        assert gate.request(60, now=0.0)
        assert gate.granted_bytes == 60

    def test_queues_excess(self):
        gate = IoGate(TokenBucket(rate=10, burst=100))
        assert gate.request(80, now=0.0)
        assert not gate.request(80, now=0.0, token="queued")
        assert gate.backlog == 1

    def test_drain_releases_in_fifo_order(self):
        gate = IoGate(TokenBucket(rate=10, burst=100))
        gate.request(100, now=0.0)
        gate.request(30, now=0.0, token="a")
        gate.request(30, now=0.0, token="b")
        assert gate.drain(now=3.5) == ["a"]
        assert gate.drain(now=7.0) == ["b"]
        assert gate.backlog == 0

    def test_queued_calls_block_later_ones(self):
        """FIFO: a small later call cannot jump a large queued call."""
        gate = IoGate(TokenBucket(rate=10, burst=100))
        gate.request(100, now=0.0)
        gate.request(90, now=0.0, token="big")
        assert not gate.request(1, now=0.5, token="small")
        assert gate.backlog == 2

    def test_next_release_time(self):
        gate = IoGate(TokenBucket(rate=10, burst=100))
        gate.request(100, now=0.0)
        gate.request(40, now=0.0)
        assert gate.next_release_time(now=0.0) == pytest.approx(4.0)

    def test_next_release_time_empty(self):
        gate = IoGate(TokenBucket(rate=10, burst=100))
        assert gate.next_release_time(now=0.0) is None

    def test_enforcement_rate_end_to_end(self):
        """Pushing far more than the allocation through the gate delivers
        at the allocated rate over time — the Section 4.2 guarantee."""
        gate = IoGate(TokenBucket(rate=10, burst=10, initial=0))
        sent = 0.0
        for step in range(101):  # 100 seconds, offered load 25 MB/s
            now = float(step)
            sent += 5 * len(gate.drain(now))
            for _ in range(5):
                if gate.request(5, now=now):
                    sent += 5
        assert sent <= 10 * 100 + 10
        assert sent >= 10 * 100 - 25
