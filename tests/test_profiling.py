"""The profiling hooks: PhaseStats edge cases and Profiler round-trips."""

from repro.profiling import PhaseStats, Profiler


class TestPhaseStats:
    def test_empty_min_is_zero_not_inf(self):
        """An empty phase reports min=0.0; the old field default leaked
        ``inf`` into ``Profiler.summary()``."""
        stats = PhaseStats()
        assert stats.min == 0.0
        assert stats.mean == 0.0
        assert stats.max == 0.0

    def test_min_tracks_smallest_sample(self):
        stats = PhaseStats()
        stats.add(0.5)
        stats.add(0.1)
        stats.add(0.9)
        assert stats.min == 0.1
        assert stats.max == 0.9
        assert stats.count == 3
        assert stats.total == 0.5 + 0.1 + 0.9

    def test_single_sample(self):
        stats = PhaseStats()
        stats.add(0.25)
        assert stats.min == 0.25 == stats.max == stats.mean


class TestProfiler:
    def test_record_and_stats(self):
        prof = Profiler()
        prof.record("phase", 0.01)
        prof.record("phase", 0.03)
        s = prof.stats("phase")
        assert s.count == 2
        assert s.mean == 0.02

    def test_time_context_manager(self):
        prof = Profiler()
        with prof.time("work"):
            pass
        assert prof.stats("work").count == 1
        assert prof.stats("work").total >= 0.0

    def test_labels_returns_list_of_str(self):
        prof = Profiler()
        prof.record("b", 0.1)
        prof.record("a", 0.1)
        labels = prof.labels()
        assert labels == ["a", "b"]
        assert all(isinstance(label, str) for label in labels)

    def test_stats_unknown_label_is_detached(self):
        """Probing an unknown label neither registers it nor feeds back."""
        prof = Profiler()
        detached = prof.stats("never-recorded")
        assert detached.count == 0
        detached.add(1.0)
        assert prof.labels() == []
        assert prof.stats("never-recorded").count == 0

    def test_summary_never_prints_inf(self):
        prof = Profiler()
        prof.record("real", 0.002)
        # an empty phase via direct dict poke (defensive: summary must
        # not render inf even if a zero-sample phase exists)
        prof._stats["empty"] = PhaseStats()
        text = prof.summary()
        assert "inf" not in text
        assert "empty: n=0" in text
        assert "real: n=1" in text

    def test_reset(self):
        prof = Profiler()
        prof.record("x", 0.1)
        prof.reset()
        assert prof.labels() == []
