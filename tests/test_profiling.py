"""The profiling hooks: PhaseStats edge cases and Profiler round-trips."""

import math
import statistics

import pytest

from repro.profiling import PhaseStats, Profiler


class TestPhaseStats:
    def test_empty_min_is_zero_not_inf(self):
        """An empty phase reports min=0.0; the old field default leaked
        ``inf`` into ``Profiler.summary()``."""
        stats = PhaseStats()
        assert stats.min == 0.0
        assert stats.mean == 0.0
        assert stats.max == 0.0

    def test_min_tracks_smallest_sample(self):
        stats = PhaseStats()
        stats.add(0.5)
        stats.add(0.1)
        stats.add(0.9)
        assert stats.min == 0.1
        assert stats.max == 0.9
        assert stats.count == 3
        assert stats.total == 0.5 + 0.1 + 0.9

    def test_single_sample(self):
        stats = PhaseStats()
        stats.add(0.25)
        assert stats.min == 0.25 == stats.max == stats.mean


class TestWelford:
    def test_variance_matches_statistics_module(self):
        samples = [0.5, 0.1, 0.9, 0.4, 0.40001, 12.0]
        stats = PhaseStats()
        for s in samples:
            stats.add(s)
        assert stats.variance == pytest.approx(statistics.variance(samples))
        assert stats.stddev == pytest.approx(statistics.stdev(samples))
        assert stats.mean == pytest.approx(statistics.mean(samples))

    def test_variance_zero_below_two_samples(self):
        stats = PhaseStats()
        assert stats.variance == 0.0
        assert stats.stddev == 0.0
        stats.add(3.0)
        assert stats.variance == 0.0

    def test_identical_samples_have_zero_variance(self):
        stats = PhaseStats()
        for _ in range(100):
            stats.add(0.125)
        assert stats.variance == pytest.approx(0.0, abs=1e-18)

    def test_numerically_stable_with_large_offset(self):
        """Welford's one-pass form must not cancel catastrophically when
        the spread is tiny relative to the magnitude (the naive
        sum-of-squares formula fails this)."""
        offset = 1e9
        samples = [offset + d for d in (0.0, 1.0, 2.0)]
        stats = PhaseStats()
        for s in samples:
            stats.add(s)
        assert stats.variance == pytest.approx(1.0, rel=1e-6)

    def test_as_dict_shape(self):
        stats = PhaseStats()
        stats.add(0.2)
        stats.add(0.4)
        d = stats.as_dict()
        assert d["count"] == 2
        assert d["mean"] == pytest.approx(0.3)
        assert d["stddev"] == pytest.approx(statistics.stdev([0.2, 0.4]))
        assert set(d) == {"count", "total", "mean", "min", "max", "stddev"}
        assert all(
            isinstance(v, (int, float)) and math.isfinite(v)
            for v in d.values()
        )

    def test_empty_as_dict_is_finite(self):
        d = PhaseStats().as_dict()
        assert d["min"] == 0.0 and d["stddev"] == 0.0


class TestProfiler:
    def test_record_and_stats(self):
        prof = Profiler()
        prof.record("phase", 0.01)
        prof.record("phase", 0.03)
        s = prof.stats("phase")
        assert s.count == 2
        assert s.mean == 0.02

    def test_time_context_manager(self):
        prof = Profiler()
        with prof.time("work"):
            pass
        assert prof.stats("work").count == 1
        assert prof.stats("work").total >= 0.0

    def test_labels_returns_list_of_str(self):
        prof = Profiler()
        prof.record("b", 0.1)
        prof.record("a", 0.1)
        labels = prof.labels()
        assert labels == ["a", "b"]
        assert all(isinstance(label, str) for label in labels)

    def test_stats_unknown_label_is_detached(self):
        """Probing an unknown label neither registers it nor feeds back."""
        prof = Profiler()
        detached = prof.stats("never-recorded")
        assert detached.count == 0
        detached.add(1.0)
        assert prof.labels() == []
        assert prof.stats("never-recorded").count == 0

    def test_summary_never_prints_inf(self):
        prof = Profiler()
        prof.record("real", 0.002)
        # an empty phase via direct dict poke (defensive: summary must
        # not render inf even if a zero-sample phase exists)
        prof._stats["empty"] = PhaseStats()
        text = prof.summary()
        assert "inf" not in text
        assert "empty: n=0" in text
        assert "real: n=1" in text

    def test_reset(self):
        prof = Profiler()
        prof.record("x", 0.1)
        prof.reset()
        assert prof.labels() == []

    def test_as_dict_exports_every_label(self):
        prof = Profiler()
        prof.record("a", 0.1)
        prof.record("a", 0.3)
        prof.record("b", 0.2)
        d = prof.as_dict()
        assert sorted(d) == ["a", "b"]
        assert d["a"]["count"] == 2
        assert d["a"]["mean"] == pytest.approx(0.2)


class TestMerge:
    def test_merged_stats_match_single_pass(self):
        """Parallel Welford combination (Chan et al.) must equal feeding
        every sample through one accumulator."""
        samples = [0.5, 0.1, 0.9, 0.4, 12.0, 0.40001, 3.5]
        reference = PhaseStats()
        left, right = PhaseStats(), PhaseStats()
        for i, s in enumerate(samples):
            reference.add(s)
            (left if i % 2 else right).add(s)
        left.merge(right)
        assert left.count == reference.count
        assert left.total == pytest.approx(reference.total, rel=1e-12)
        assert left.mean == pytest.approx(reference.mean, rel=1e-12)
        assert left.variance == pytest.approx(reference.variance, rel=1e-9)
        assert left.min == reference.min
        assert left.max == reference.max

    def test_merge_with_empty_is_identity(self):
        stats = PhaseStats()
        stats.add(0.2)
        stats.add(0.6)
        before = stats.as_dict()
        stats.merge(PhaseStats())
        assert stats.as_dict() == before
        empty = PhaseStats()
        empty.merge(stats)
        assert empty.as_dict() == before

    def test_merge_returns_self(self):
        a, b = PhaseStats(), PhaseStats()
        b.add(1.0)
        assert a.merge(b) is a

    def test_profiler_merge_unions_labels(self):
        a, b = Profiler(), Profiler()
        a.record("shared", 0.1)
        b.record("shared", 0.3)
        b.record("only_b", 0.5)
        a.merge(b)
        assert a.labels() == ["only_b", "shared"]
        assert a.stats("shared").count == 2
        assert a.stats("shared").mean == pytest.approx(0.2)
        assert a.stats("only_b").count == 1
        # the source profiler is untouched
        assert b.stats("shared").count == 1

    def test_profiler_merge_matches_single_profiler(self):
        one, left, right = Profiler(), Profiler(), Profiler()
        samples = [("x", 0.1), ("y", 0.2), ("x", 0.3), ("y", 0.4), ("x", 0.5)]
        for i, (label, value) in enumerate(samples):
            one.record(label, value)
            (left if i % 2 else right).record(label, value)
        left.merge(right)
        for label in one.labels():
            ref, got = one.stats(label), left.stats(label)
            assert got.count == ref.count
            assert got.mean == pytest.approx(ref.mean, rel=1e-12)
            assert got.stddev == pytest.approx(ref.stddev, rel=1e-9)


class TestNesting:
    def test_reentrant_same_label_records_once(self):
        """Recursive entry of an open phase must not double-count wall
        time: only the outermost frame records a sample."""
        prof = Profiler()
        with prof.time("round"):
            with prof.time("round"):
                with prof.time("round"):
                    pass
        assert prof.stats("round").count == 1

    def test_reentrant_exit_restores_depth(self):
        prof = Profiler()
        with prof.time("round"):
            with prof.time("round"):
                pass
            # inner exit must not close the outer frame
            with prof.time("round"):
                pass
        assert prof.stats("round").count == 1
        # fully closed: a fresh entry records a second sample
        with prof.time("round"):
            pass
        assert prof.stats("round").count == 2

    def test_reentrant_frame_survives_exception(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.time("round"):
                with prof.time("round"):
                    raise ValueError("boom")
        assert prof.stats("round").count == 1
        assert prof._open == {}
        assert prof._frames == []

    def test_self_time_excludes_nested_phase(self):
        import time as _time

        prof = Profiler()
        with prof.time("outer"):
            _time.sleep(0.01)
            with prof.time("inner"):
                _time.sleep(0.02)
        outer, inner = prof.stats("outer"), prof.stats("inner")
        # cumulative outer covers the inner phase...
        assert outer.total >= inner.total
        # ...but self time does not
        assert prof.self_total("outer") == pytest.approx(
            outer.total - inner.total
        )
        assert prof.self_total("inner") == pytest.approx(inner.total)

    def test_self_time_defaults_to_duration_for_record(self):
        prof = Profiler()
        prof.record("flat", 0.5)
        prof.record("flat", 0.25)
        assert prof.self_total("flat") == pytest.approx(0.75)

    def test_self_total_unknown_label_is_zero(self):
        assert Profiler().self_total("nope") == 0.0

    def test_as_dict_carries_self_total(self):
        prof = Profiler()
        with prof.time("outer"):
            with prof.time("inner"):
                pass
        d = prof.as_dict()
        assert d["outer"]["self_total"] <= d["outer"]["total"]
        assert d["inner"]["self_total"] == pytest.approx(
            d["inner"]["total"]
        )

    def test_merge_accumulates_self_totals(self):
        a, b = Profiler(), Profiler()
        a.record("phase", 1.0, self_seconds=0.4)
        b.record("phase", 2.0, self_seconds=0.5)
        a.merge(b)
        assert a.stats("phase").total == pytest.approx(3.0)
        assert a.self_total("phase") == pytest.approx(0.9)

    def test_reset_clears_nesting_state(self):
        prof = Profiler()
        prof.record("x", 1.0, self_seconds=0.5)
        prof.reset()
        assert prof.self_total("x") == 0.0
        assert prof._open == {} and prof._frames == []
