"""Analysis helpers: correlation, tightness, heatmaps."""

import numpy as np
import pytest

from repro.analysis.correlation import demand_correlation_matrix, demand_matrix
from repro.analysis.heatmap import demand_cov, demand_heatmap
from repro.analysis.tightness import (
    machine_usage_tightness,
    utilization_tightness,
)
from repro.metrics.collector import TimelinePoint

from conftest import make_task


class TestDemandMatrix:
    def test_aggregation(self):
        task = make_task(cpu=2, mem=4, diskr=10, diskw=20, netin=5, netout=5)
        matrix = demand_matrix([task])
        assert matrix.tolist() == [[2, 4, 30, 10]]

    def test_correlation_of_correlated_tasks(self):
        tasks = [make_task(cpu=c, mem=2 * c) for c in (1, 2, 3, 4)]
        corr = demand_correlation_matrix(tasks)
        assert corr[("cores", "memory")] == pytest.approx(1.0)

    def test_uncorrelated_constant_column_is_zero(self):
        tasks = [make_task(cpu=c, mem=1) for c in (1, 2, 3)]
        corr = demand_correlation_matrix(tasks)
        assert corr[("cores", "memory")] == 0.0

    def test_needs_two_tasks(self):
        with pytest.raises(ValueError):
            demand_correlation_matrix([make_task()])


class TestTightness:
    def _timeline(self, values, resource="cpu"):
        return [
            TimelinePoint(
                time=float(i),
                running_tasks=0,
                demand_utilization={resource: v},
                throughput_utilization={resource: v},
            )
            for i, v in enumerate(values)
        ]

    def test_utilization_tightness(self):
        timeline = self._timeline([0.5, 0.7, 0.9, 1.0])
        out = utilization_tightness(timeline, thresholds=(0.6, 0.8))
        assert out["cpu"][0.6] == pytest.approx(0.75)
        assert out["cpu"][0.8] == pytest.approx(0.5)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError):
            utilization_tightness([])

    def test_machine_usage_tightness(self):
        samples = {"disk": np.array([[0.5, 1.2], [0.9, 0.1]])}
        out = machine_usage_tightness(samples, thresholds=(0.6, 1.0))
        assert out["disk"][0.6] == pytest.approx(0.5)
        assert out["disk"][1.0] == pytest.approx(0.25)

    def test_machine_usage_empty_rejected(self):
        with pytest.raises(ValueError):
            machine_usage_tightness({"disk": np.array([])})


class TestHeatmap:
    def test_counts_sum_to_tasks(self):
        tasks = [make_task(cpu=c, mem=m)
                 for c in (1, 2, 4) for m in (1, 8)]
        counts, xe, ye = demand_heatmap(tasks, bins=4)
        assert counts.sum() == len(tasks)
        assert len(xe) == 5

    def test_unknown_resource_rejected(self):
        with pytest.raises(ValueError):
            demand_heatmap([make_task()], x_resource="gpu")

    def test_cov(self):
        tasks = [make_task(cpu=c) for c in (1.0, 1.0, 1.0)]
        assert demand_cov(tasks)["cores"] == 0.0
        varied = [make_task(cpu=c) for c in (1.0, 9.0)]
        assert demand_cov(varied)["cores"] > 0.5
