"""Progress-aware SRTF tests (Section 3.5 "Future Demands")."""

import pytest

from repro.cluster.cluster import Cluster
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine

from conftest import make_simple_job


def bound(progress_aware):
    scheduler = TetrisScheduler(
        TetrisConfig(fairness_knob=0.0,
                     progress_aware_srtf=progress_aware)
    )
    scheduler.bind(Cluster(2, machines_per_rack=2))
    return scheduler


class TestRemainingWork:
    def _job_with_one_running(self, scheduler):
        job = make_simple_job(num_tasks=4, cpu=2, cpu_work=20)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        task = job.all_tasks()[0]
        task.mark_running(0, 0.0)
        return job, task

    def test_disabled_ignores_progress(self):
        scheduler = bound(progress_aware=False)
        job, task = self._job_with_one_running(scheduler)
        assert scheduler._remaining_work(job, 5.0) == pytest.approx(
            scheduler._job_work[job.job_id]
        )

    def test_enabled_credits_elapsed_fraction(self):
        scheduler = bound(progress_aware=True)
        job, task = self._job_with_one_running(scheduler)
        full = scheduler._job_work[job.job_id]
        # the running task is half done (nominal 10 s, elapsed 5 s)
        adjusted = scheduler._remaining_work(job, 5.0)
        term = scheduler._task_work[task.task_id]
        assert adjusted == pytest.approx(full - 0.5 * term)

    def test_credit_caps_at_full_task(self):
        scheduler = bound(progress_aware=True)
        job, task = self._job_with_one_running(scheduler)
        full = scheduler._job_work[job.job_id]
        term = scheduler._task_work[task.task_id]
        # long past the nominal duration: at most one task's credit
        assert scheduler._remaining_work(job, 1000.0) == pytest.approx(
            full - term
        )

    def test_never_negative(self):
        scheduler = bound(progress_aware=True)
        job = make_simple_job(num_tasks=1, cpu=2, cpu_work=20)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        job.all_tasks()[0].mark_running(0, 0.0)
        assert scheduler._remaining_work(job, 1e9) >= 0.0


class TestEndToEnd:
    def test_runs_and_finishes(self):
        jobs = [make_simple_job(num_tasks=6, cpu=2, cpu_work=15,
                                arrival_time=float(i)) for i in range(4)]
        cluster = Cluster(2, machines_per_rack=2)
        scheduler = TetrisScheduler(
            TetrisConfig(progress_aware_srtf=True)
        )
        Engine(cluster, scheduler, jobs).run()
        assert all(j.is_finished for j in jobs)

    def test_comparable_quality(self):
        """The refinement must never wreck the schedule (sanity band)."""
        from repro.experiments.harness import ExperimentConfig, run_trace
        from repro.workload.tracegen import (
            WorkloadSuiteConfig, generate_workload_suite,
        )

        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=12, task_scale=0.04,
                                arrival_horizon=300, seed=17)
        )
        config = ExperimentConfig(num_machines=10, seed=17)
        plain = run_trace(trace, TetrisScheduler(), config)
        aware = run_trace(
            trace,
            TetrisScheduler(TetrisConfig(progress_aware_srtf=True)),
            config,
        )
        assert aware.mean_jct <= plain.mean_jct * 1.25
