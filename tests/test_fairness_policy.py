"""Fairness policy unit tests (slot and DRF orderings)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.fairness_policy import (
    DRFFairnessPolicy,
    SlotFairnessPolicy,
)
from repro.schedulers.tetris import TetrisScheduler

from conftest import make_simple_job


@pytest.fixture
def bound_scheduler():
    scheduler = TetrisScheduler()
    scheduler.bind(Cluster(2, machines_per_rack=2))
    return scheduler


def arrive(scheduler, *jobs):
    for job in jobs:
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)


class TestSlotFairnessPolicy:
    def test_total_slots(self, bound_scheduler):
        policy = SlotFairnessPolicy(slot_mem_gb=2.0)
        # 2 machines x (48 GB / 2 GB) slots
        assert policy.total_slots(bound_scheduler) == 48

    def test_deficit_orders_by_running_tasks(self, bound_scheduler):
        policy = SlotFairnessPolicy()
        idle = make_simple_job(num_tasks=4, name="idle")
        busy = make_simple_job(num_tasks=4, name="busy")
        arrive(bound_scheduler, idle, busy)
        # give 'busy' two running tasks
        for task in busy.all_tasks()[:2]:
            task.mark_running(0, 0.0)
        assert policy.deficit(bound_scheduler, idle) > policy.deficit(
            bound_scheduler, busy
        )

    def test_invalid_slot_size(self):
        with pytest.raises(ValueError):
            SlotFairnessPolicy(slot_mem_gb=0)


class TestDRFFairnessPolicy:
    def test_dominant_share_over_chosen_dims(self, bound_scheduler):
        policy = DRFFairnessPolicy(dims=("cpu", "mem"))
        job = make_simple_job(num_tasks=1)
        arrive(bound_scheduler, job)
        bound_scheduler.job_alloc[job.job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=16, mem=24)
        )
        # cpu share 16/32 = 0.5; mem share 24/96 = 0.25
        assert policy.dominant_share(
            bound_scheduler, job
        ) == pytest.approx(0.5)

    def test_ignores_other_dims(self, bound_scheduler):
        policy = DRFFairnessPolicy(dims=("cpu", "mem"))
        job = make_simple_job(num_tasks=1)
        arrive(bound_scheduler, job)
        bound_scheduler.job_alloc[job.job_id].add_inplace(
            DEFAULT_MODEL.vector(netin=250)
        )
        assert policy.dominant_share(bound_scheduler, job) == 0.0

    def test_deficit_is_fair_share_minus_dominant(self, bound_scheduler):
        policy = DRFFairnessPolicy()
        a = make_simple_job(num_tasks=1, name="a")
        b = make_simple_job(num_tasks=1, name="b")
        arrive(bound_scheduler, a, b)
        bound_scheduler.job_alloc[a.job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=8)
        )
        assert policy.deficit(bound_scheduler, a) == pytest.approx(
            0.5 - 8 / 32
        )
        assert policy.deficit(bound_scheduler, b) == pytest.approx(0.5)

    def test_unknown_job_has_zero_share(self, bound_scheduler):
        policy = DRFFairnessPolicy()
        job = make_simple_job(num_tasks=1)  # never arrived
        assert policy.dominant_share(bound_scheduler, job) == 0.0
