"""Trace validation tests."""

import pytest

from repro.workload.trace import TraceJob, TraceStage, validate_trace
from repro.workload.tracegen import (
    BingTraceConfig,
    FacebookTraceConfig,
    WorkloadSuiteConfig,
    generate_bing_trace,
    generate_facebook_trace,
    generate_workload_suite,
)


def ok_job(name="j"):
    return TraceJob(
        name=name,
        arrival_time=0.0,
        stages=[
            TraceStage(name="map", num_tasks=2, cpu=1, mem=1, cpu_work=5),
            TraceStage(name="reduce", num_tasks=1, cpu=1, mem=1,
                       cpu_work=5, parents=["map"], input_kind="shuffle",
                       input_mb_per_task=10, netin=5),
        ],
    )


class TestValidate:
    def test_clean_trace(self):
        assert validate_trace([ok_job("a"), ok_job("b")]) == []

    def test_duplicate_job_names(self):
        issues = validate_trace([ok_job("a"), ok_job("a")])
        assert any("duplicate job name" in i for i in issues)

    def test_negative_arrival(self):
        job = ok_job()
        job.arrival_time = -1.0
        assert any(
            "negative arrival" in i for i in validate_trace([job])
        )

    def test_unknown_parent(self):
        job = ok_job()
        job.stages[1].parents = ["ghost"]
        issues = validate_trace([job])
        assert any("not an earlier stage" in i for i in issues)

    def test_forward_parent_reference(self):
        job = ok_job()
        # parent declared after the child: invalid ordering
        job.stages[0].parents = ["reduce"]
        issues = validate_trace([job])
        assert any("not an earlier stage" in i for i in issues)

    def test_negative_demand(self):
        job = ok_job()
        job.stages[0].cpu = -1
        assert any("negative cpu" in i for i in validate_trace([job]))

    def test_shuffle_without_parents(self):
        job = ok_job()
        job.stages[0].input_kind = "shuffle"
        job.stages[0].input_mb_per_task = 5
        issues = validate_trace([job])
        assert any("no parent stages" in i for i in issues)

    def test_bad_fanin(self):
        job = ok_job()
        job.stages[1].shuffle_fanin = 0
        assert any("shuffle_fanin" in i for i in validate_trace([job]))


class TestGeneratorsProduceValidTraces:
    def test_workload_suite_valid(self):
        trace = generate_workload_suite(WorkloadSuiteConfig(num_jobs=15))
        assert validate_trace(trace) == []

    def test_facebook_valid(self):
        trace = generate_facebook_trace(FacebookTraceConfig(num_jobs=15))
        assert validate_trace(trace) == []

    def test_bing_valid(self):
        trace = generate_bing_trace(BingTraceConfig(num_jobs=15))
        assert validate_trace(trace) == []
