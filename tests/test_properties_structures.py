"""Property-based tests on the core data structures (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.stage_index import StageIndex
from repro.schedulers.upper_bound import aggregate_upper_bound
from repro.sim.fluid import FlowSpec, FlowTable
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork


def fb_table():
    return FlowTable(
        DEFAULT_MODEL,
        [
            DEFAULT_MODEL.vector(cpu=16, mem=48, diskr=200, diskw=200,
                                 netin=125, netout=125).data
            for _ in range(2)
        ],
    )


class TestFluidMonotonicity:
    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=300.0),
            min_size=1,
            max_size=12,
        )
    )
    def test_adding_flows_never_raises_existing_rates(self, rates):
        """Each added flow can only lower (or keep) the rates of flows
        already sharing its slot."""
        table = fb_table()
        first = table.add_flow(
            FlowSpec(work=1e9, nominal_rate=100.0,
                     slots=((0, "diskr"),))
        )
        previous = table.current_rate(first)
        for rate in rates:
            table.add_flow(
                FlowSpec(work=1e9, nominal_rate=rate,
                         slots=((0, "diskr"),))
            )
            current = table.current_rate(first)
            assert current <= previous + 1e-9
            previous = current

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=250.0),
            min_size=1,
            max_size=10,
        )
    )
    def test_rates_never_exceed_nominal(self, rates):
        table = fb_table()
        ids = [
            table.add_flow(
                FlowSpec(work=100.0, nominal_rate=rate,
                         slots=((0, "netin"),))
            )
            for rate in rates
        ]
        for flow_id, rate in zip(ids, rates):
            assert table.current_rate(flow_id) <= rate + 1e-9


class TestStageIndexProperties:
    @settings(deadline=None, max_examples=25)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=3))
    def test_each_task_claimable_exactly_once(self, num_tasks, machine):
        tasks = [
            Task(DEFAULT_MODEL.vector(cpu=1, mem=1), TaskWork(1.0),
                 inputs=[TaskInput(10.0, (machine,))])
            for _ in range(num_tasks)
        ]
        stage = Stage("s", tasks)
        Job([stage])
        index = StageIndex()
        index.add_stage(stage)
        claimed = set()
        while True:
            task = index.local_candidate(stage, machine) or (
                index.any_candidate(stage)
            )
            if task is None:
                break
            assert task.task_id not in claimed
            claimed.add(task.task_id)
            index.claim(task)
        assert len(claimed) == num_tasks


class TestUpperBoundProperties:
    def _jobs(self, sizes):
        jobs = []
        for size in sizes:
            tasks = [
                Task(DEFAULT_MODEL.vector(cpu=2, mem=2),
                     TaskWork(cpu_core_seconds=20.0))
                for _ in range(size)
            ]
            jobs.append(Job([Stage("s", tasks)]))
        return jobs

    @settings(deadline=None, max_examples=20)
    @given(
        st.lists(st.integers(min_value=1, max_value=10),
                 min_size=1, max_size=5)
    )
    def test_makespan_monotone_in_workload(self, sizes):
        """Adding a job never shrinks the relaxation's makespan."""
        cluster = Cluster(2, machines_per_rack=2)
        total, per = cluster.total_capacity(), cluster.machine_capacity()
        small = aggregate_upper_bound(self._jobs(sizes[:-1]), total, per) \
            if len(sizes) > 1 else None
        full = aggregate_upper_bound(self._jobs(sizes), total, per)
        if small is not None:
            assert full.makespan >= small.makespan - 1e-9
        # and the bound is at least one task's duration
        assert full.makespan >= 10.0 - 1e-9

    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=1, max_value=40))
    def test_capacity_lower_bound(self, num_tasks):
        """Makespan >= total cpu work / aggregate cores."""
        cluster = Cluster(2, machines_per_rack=2)
        jobs = self._jobs([num_tasks])
        result = aggregate_upper_bound(
            jobs, cluster.total_capacity(), cluster.machine_capacity()
        )
        total_work = num_tasks * 20.0
        assert result.makespan >= total_work / 32.0 - 1e-6
