"""Tests for the federation acceptance gate and the shard-stamp rules.

The gate is the CI tripwire for the federation's whole value
proposition (faster rounds, same packing), so its arithmetic —
calibration rescaling, the speedup threshold, the fidelity tolerance —
and its refusal conditions are pinned against synthetic profiles built
from the real scenario registry.
"""

import pytest

from repro.bench.detect import _shards_of, compare_profiles
from repro.bench.profile import SCHEMA
from repro.bench.scenarios import get_scenario
from repro.federation.gate import GATE_METRIC, gate_profiles, main


def _metric(value, kind="timing", direction="lower", unit="ms"):
    return {
        "kind": kind,
        "direction": direction,
        "unit": unit,
        "value": float(value),
        "samples": [float(value)],
    }


def _profile(
    scenario="cluster-xl",
    shards=None,
    round_ms=20.0,
    makespan=1000.0,
    mean_jct=200.0,
    calibration=0.01,
    fingerprint=None,
):
    meta = {
        "git_sha": "deadbeef",
        "git_dirty": False,
        "host": "test",
        "platform": "test",
        "python": "3",
        "config_fingerprint": (
            fingerprint
            if fingerprint is not None
            else get_scenario(scenario).config_fingerprint()
        ),
        "calibration_seconds": calibration,
        "repeats": 1,
        "kernel_backend": "numpy",
    }
    if shards is not None:
        meta["shards"] = shards
    return {
        "schema": SCHEMA,
        "scenario": scenario,
        "kind": "trace",
        "created_unix": 1_000.0,
        "meta": meta,
        "metrics": {
            GATE_METRIC: _metric(round_ms),
            "makespan": _metric(makespan, kind="fidelity", unit="s"),
            "mean_jct": _metric(mean_jct, kind="fidelity", unit="s"),
        },
        "phases": {},
        "registry": {},
    }


def _sharded(**kwargs):
    kwargs.setdefault("scenario", "cluster-xl-sharded")
    kwargs.setdefault("shards", 4)
    return _profile(**kwargs)


class TestGateProfiles:
    def test_passes_on_speedup_and_fidelity(self):
        result = gate_profiles(
            _profile(round_ms=30.0),
            _sharded(round_ms=10.0, makespan=1020.0, mean_jct=204.0),
        )
        assert result.speedup == pytest.approx(3.0)
        assert result.speedup_ok and result.fidelity_ok and result.ok

    def test_fails_below_min_speedup(self):
        result = gate_profiles(
            _profile(round_ms=30.0), _sharded(round_ms=20.0)
        )
        assert result.speedup == pytest.approx(1.5)
        assert not result.speedup_ok
        assert not result.ok
        assert "FAIL" in result.render()

    def test_fails_outside_fidelity_tolerance(self):
        result = gate_profiles(
            _profile(round_ms=30.0),
            _sharded(round_ms=10.0, mean_jct=220.0),  # +10% JCT
        )
        assert result.speedup_ok
        assert not result.fidelity_ok
        assert not result.ok

    def test_better_fidelity_never_fails(self):
        result = gate_profiles(
            _profile(round_ms=30.0),
            _sharded(round_ms=10.0, makespan=900.0, mean_jct=150.0),
            fidelity_tolerance=0.0,
        )
        assert result.fidelity_ok

    def test_calibration_rescales_baseline(self):
        # candidate host is 2x slower (larger calibration spin time):
        # the baseline's 20ms reads as 40ms on the candidate's host, so
        # a 20ms sharded round is a genuine 2x
        result = gate_profiles(
            _profile(round_ms=20.0, calibration=0.01),
            _sharded(round_ms=20.0, calibration=0.02),
        )
        assert result.baseline_ms_rescaled == pytest.approx(40.0)
        assert result.speedup == pytest.approx(2.0)

    def test_rejects_centralized_candidate(self):
        with pytest.raises(ValueError, match="centralized"):
            gate_profiles(_profile(), _profile())

    def test_rejects_sharded_baseline(self):
        with pytest.raises(ValueError, match="baseline profile is sharded"):
            gate_profiles(_sharded(), _sharded())

    def test_rejects_different_workloads(self):
        from dataclasses import replace as dc_replace

        sharded_smoke = dc_replace(get_scenario("smoke"), shards=4)
        smoke = _profile(
            scenario="smoke",
            shards=4,
            fingerprint=sharded_smoke.config_fingerprint(),
        )
        with pytest.raises(ValueError, match="different workloads"):
            gate_profiles(_profile(), smoke)

    def test_rejects_drifted_scenario_definition(self):
        stale = _sharded(fingerprint="0123456789abcdef")
        with pytest.raises(ValueError, match="re-capture"):
            gate_profiles(_profile(), stale)

    def test_main_verdict_exit_codes(self, tmp_path, capsys):
        from repro.bench.profile import dump_json

        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        dump_json(_profile(round_ms=30.0), base)
        dump_json(_sharded(round_ms=10.0), cand)
        assert main(["--baseline", str(base), "--candidate", str(cand)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main([
            "--baseline", str(base), "--candidate", str(cand),
            "--min-speedup", "4.0",
        ]) == 1
        assert main(["--baseline", str(base), "--candidate",
                     str(tmp_path / "missing.json")]) == 2


class TestShardStamp:
    def test_missing_stamp_reads_centralized(self):
        assert _shards_of(_profile()) == 1
        assert _shards_of(_sharded()) == 4
        assert _shards_of({"meta": {"shards": "garbage"}}) == 1

    def test_compare_never_crosses_shard_configs(self):
        """Same scenario and fingerprint but different shard stamps must
        refuse: the timing delta would be the execution mode."""
        base = _profile()
        cur = _profile()
        cur["meta"]["shards"] = 4
        result = compare_profiles(base, cur)
        assert result.config_mismatch
        assert any("shard-count mismatch" in n for n in result.notes)

    def test_same_shard_config_compares(self):
        base = _profile(shards=4)
        cur = _profile(shards=4)
        assert not compare_profiles(base, cur).config_mismatch
