"""Tetris scheduler tests: packing, SRTF, fairness knob, barrier knob."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.fairness_policy import (
    DRFFairnessPolicy,
    SlotFairnessPolicy,
)
from repro.schedulers.packing_only import PackingOnlyScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_simple_job, make_task, make_two_stage_job


def schedule_once(scheduler, jobs, num_machines=2):
    cluster = Cluster(num_machines, machines_per_rack=2)
    scheduler.bind(cluster)
    for job in jobs:
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    return cluster, scheduler.schedule(0.0)


class TestConfigValidation:
    def test_defaults_are_paper_defaults(self):
        cfg = TetrisConfig()
        assert cfg.fairness_knob == 0.25
        assert cfg.barrier_knob == 0.9
        assert cfg.remote_penalty == 0.1
        assert cfg.scorer == "cosine"

    @pytest.mark.parametrize("field,value", [
        ("fairness_knob", 1.0),
        ("fairness_knob", -0.1),
        ("barrier_knob", 1.5),
        ("remote_penalty", 1.5),
        ("srtf_multiplier", -1),
        ("alignment_weight", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            TetrisConfig(**{field: value})


class TestNoOverAllocation:
    def test_full_vector_admission(self):
        """Only tasks whose peak demands fit are considered (Section 3.2),
        so booked demand never exceeds capacity on any dimension."""
        job = make_simple_job(num_tasks=20, cpu=1, mem=1)
        for task in job.all_tasks():
            task.demands.set("diskw", 80.0)
            task.work.write_mb = 100.0
        cluster, placements = schedule_once(TetrisScheduler(), [job],
                                            num_machines=1)
        assert len(placements) == 2  # diskw 200 // 80
        total = DEFAULT_MODEL.zeros()
        for p in placements:
            total.add_inplace(p.booked)
        assert total.fits_in(cluster.machine_capacity())

    def test_remote_source_headroom_checked(self):
        """A task reading remotely needs netout+diskr at the source."""
        cluster = Cluster(2, machines_per_rack=2)
        # saturate machine 1's netout in the scheduler's books
        blocker = make_task(netout=125)
        cluster.machine(1).place(blocker, blocker.demands)
        job = make_simple_job(num_tasks=1, cpu=1, mem=1)
        task = job.all_tasks()[0]
        task.demands.set("netin", 50.0)
        task.inputs.append(TaskInput(100, (1,)))
        scheduler = TetrisScheduler()
        scheduler.bind(cluster)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        placements = scheduler.schedule(0.0, machine_ids=[0])
        assert placements == []

    def test_remote_check_can_be_disabled(self):
        cluster = Cluster(2, machines_per_rack=2)
        blocker = make_task(netout=125)
        cluster.machine(1).place(blocker, blocker.demands)
        job = make_simple_job(num_tasks=1, cpu=1, mem=1)
        task = job.all_tasks()[0]
        task.demands.set("netin", 50.0)
        task.inputs.append(TaskInput(100, (1,)))
        scheduler = TetrisScheduler(
            TetrisConfig(check_remote_resources=False)
        )
        scheduler.bind(cluster)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        assert len(scheduler.schedule(0.0, machine_ids=[0])) == 1


class TestPacking:
    def test_complementary_tasks_share_a_machine(self):
        """A CPU-heavy and a memory-heavy job pack together instead of
        fragmenting."""
        cpu_job = make_simple_job(num_tasks=4, cpu=7, mem=2, name="cpu")
        mem_job = make_simple_job(num_tasks=4, cpu=1, mem=20, name="mem")
        cluster, placements = schedule_once(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
            [cpu_job, mem_job], num_machines=1,
        )
        placed_names = {p.task.job.name for p in placements}
        assert placed_names == {"cpu", "mem"}
        # 2 cpu tasks (14 cores, 4 GB) + 2 mem tasks (2 cores, 40 GB)
        assert len(placements) == 4

    def test_machine_prefers_its_local_task(self):
        """The remote penalty makes a machine pick the task whose input
        it holds over an equally-sized task with remote input.  The two
        variants are sized so their capacity-normalized demands tie
        (diskr 50/200 == netin 31.25/125); the 10% penalty then breaks
        the tie toward the local read."""
        cluster = Cluster(2, machines_per_rack=2)
        local = make_task(cpu=1, mem=1, diskr=50, netin=31.25, cpu_work=5,
                          inputs=[TaskInput(100.0, (0,))])
        remote = make_task(cpu=1, mem=1, diskr=50, netin=31.25, cpu_work=5,
                           inputs=[TaskInput(100.0, (1,))])
        job = Job([Stage("s", [remote, local])])
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        scheduler.bind(cluster)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        placements = scheduler.schedule(0.0, machine_ids=[0])
        assert placements[0].task is local


class TestSRTFTerm:
    def test_small_job_preferred(self):
        """With identical task profiles, the job with fewer remaining
        tasks is served first (multi-resource SRTF, Section 3.3)."""
        small = make_simple_job(num_tasks=2, cpu=8, mem=8, name="small")
        big = make_simple_job(num_tasks=50, cpu=8, mem=8, name="big")
        cluster, placements = schedule_once(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
            [big, small], num_machines=1,
        )
        first_two = [p.task.job.name for p in placements[:2]]
        assert first_two == ["small", "small"]

    def test_packing_only_ignores_remaining_work(self):
        small = make_simple_job(num_tasks=2, cpu=8, mem=8, name="small")
        big = make_simple_job(num_tasks=50, cpu=8, mem=8, name="big")
        cluster, placements = schedule_once(
            PackingOnlyScheduler(), [big, small], num_machines=1
        )
        # identical alignment; order follows iteration, not job size
        assert len(placements) == 2

    def test_srtf_scheduler_orders_strictly_by_work(self):
        small = make_simple_job(num_tasks=2, cpu=2, mem=2, name="small")
        big = make_simple_job(num_tasks=40, cpu=2, mem=2, name="big")
        cluster, placements = schedule_once(
            SRTFScheduler(), [big, small], num_machines=1
        )
        assert [p.task.job.name for p in placements[:2]] == ["small"] * 2

    def test_ablation_constructors_validate(self):
        with pytest.raises(ValueError):
            SRTFScheduler(TetrisConfig(alignment_weight=1.0))
        with pytest.raises(ValueError):
            PackingOnlyScheduler(TetrisConfig(srtf_multiplier=1.0))


class TestFairnessKnob:
    def _two_jobs(self):
        starved = make_simple_job(num_tasks=10, cpu=2, mem=2,
                                  name="starved")
        greedy = make_simple_job(num_tasks=10, cpu=2, mem=2, name="greedy")
        return starved, greedy

    def test_knob_restricts_candidates(self):
        starved, greedy = self._two_jobs()
        cluster = Cluster(1)
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.5),
            fairness_policy=DRFFairnessPolicy(),
        )
        scheduler.bind(cluster)
        for job in (starved, greedy):
            job.arrive()
            scheduler.on_job_arrival(job, 0.0)
        # greedy already holds a big allocation
        scheduler.job_alloc[greedy.job_id].add_inplace(
            DEFAULT_MODEL.vector(cpu=10, mem=10)
        )
        candidates = scheduler.candidate_jobs()
        assert [j.name for j in candidates] == ["starved"]

    def test_knob_zero_considers_everyone(self):
        starved, greedy = self._two_jobs()
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        scheduler.bind(Cluster(1))
        for job in (starved, greedy):
            job.arrive()
            scheduler.on_job_arrival(job, 0.0)
        assert len(scheduler.candidate_jobs()) == 2

    def test_candidates_never_empty(self):
        job = make_simple_job(num_tasks=1)
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.99))
        scheduler.bind(Cluster(1))
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        assert len(scheduler.candidate_jobs()) == 1

    def test_slot_fairness_policy_supported(self):
        job = make_simple_job(num_tasks=2)
        scheduler = TetrisScheduler(
            fairness_policy=SlotFairnessPolicy(slot_mem_gb=2.0)
        )
        cluster = Cluster(2, machines_per_rack=2)
        Engine(cluster, scheduler, [job]).run()
        assert job.is_finished


class TestBarrierKnob:
    def test_straggler_preference(self):
        """Once 90% of a stage is done, its stragglers win over tasks
        with better alignment."""
        job = make_two_stage_job(num_map=10, num_reduce=1)
        other = make_simple_job(num_tasks=20, cpu=8, mem=8, name="other")
        cluster = Cluster(1)
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.0, barrier_knob=0.9)
        )
        scheduler.bind(cluster)
        for j in (job, other):
            j.arrive()
            scheduler.on_job_arrival(j, 0.0)
        # finish 9 of 10 map tasks out-of-band
        for task in job.dag.roots()[0].tasks[:9]:
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
            scheduler.index.forget(task)
        placements = scheduler.schedule(1.0)
        assert placements[0].task.stage.name == "map"
        assert placements[0].task.job is job

    def test_barrier_disabled_at_zero(self):
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.0, barrier_knob=0.0)
        )
        scheduler.bind(Cluster(1))
        assert scheduler._barrier_stages([]) == set()


class TestRemotePenalty:
    def test_penalty_scales_alignment(self):
        cfg = TetrisConfig(remote_penalty=0.2)
        scheduler = TetrisScheduler(cfg)
        scheduler.bind(Cluster(2, machines_per_rack=2))
        demand = DEFAULT_MODEL.vector(cpu=2, mem=2)
        free = DEFAULT_MODEL.vector(cpu=16, mem=48)
        local = scheduler._score_alignment(demand, free, remote=False)
        remote = scheduler._score_alignment(demand, free, remote=True)
        assert remote == pytest.approx(0.8 * local)


class TestConsideredDims:
    def test_cpu_mem_only_tetris_over_allocates_io(self):
        """The Section 5.3.1 ablation: restricted to CPU+memory, Tetris
        books disk beyond capacity like the baselines."""
        job = make_simple_job(num_tasks=10, cpu=1, mem=1)
        for task in job.all_tasks():
            task.demands.set("diskw", 100.0)
            task.work.write_mb = 50.0
        scheduler = TetrisScheduler(
            TetrisConfig(considered_dims=("cpu", "mem"), fairness_knob=0.0)
        )
        cluster, placements = schedule_once(scheduler, [job],
                                            num_machines=1)
        assert len(placements) == 10  # full-dim Tetris would stop at 2

    def test_with_config_builder(self):
        scheduler = TetrisScheduler()
        other = scheduler.with_config(fairness_knob=0.5)
        assert other.config.fairness_knob == 0.5
        assert scheduler.config.fairness_knob == 0.25


class TestEndToEnd:
    def test_mixed_workload_completes(self):
        jobs = [make_two_stage_job(num_map=4, num_reduce=2,
                                   arrival_time=i * 2.0)
                for i in range(4)]
        cluster = Cluster(4, machines_per_rack=2)
        Engine(cluster, TetrisScheduler(), jobs).run()
        assert all(j.is_finished for j in jobs)
