"""Multi-seed replication tests."""

import pytest

from repro.experiments.replication import (
    MetricSummary,
    ReplicatedComparison,
    replicate,
)
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


def make_trace(seed):
    return generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=6, task_scale=0.02,
                            arrival_horizon=150, seed=seed)
    )


class TestMetricSummary:
    def test_mean_and_std(self):
        s = MetricSummary.of([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.values == (1.0, 2.0, 3.0)

    def test_single_value_has_zero_std(self):
        assert MetricSummary.of([5.0]).std == 0.0

    def test_str(self):
        assert "±" in str(MetricSummary.of([1.0, 2.0]))


class TestReplicate:
    @pytest.fixture(scope="class")
    def replicated(self):
        return replicate(
            make_trace,
            {"tetris": TetrisScheduler, "slot-fair": SlotFairScheduler},
            seeds=(1, 2, 3),
            num_machines=8,
        )

    def test_one_value_per_seed(self, replicated):
        assert replicated.seeds == (1, 2, 3)
        assert len(replicated.mean_jct["tetris"].values) == 3
        assert len(replicated.makespan["slot-fair"].values) == 3

    def test_seeds_vary_the_outcome(self, replicated):
        assert replicated.mean_jct["tetris"].std > 0.0

    def test_improvement_aggregation(self, replicated):
        gain = replicated.improvement("slot-fair", "tetris")
        assert len(gain.values) == 3
        # Tetris wins on average across seeds
        assert gain.mean > 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(make_trace, {"t": TetrisScheduler}, seeds=())
