"""Property-based end-to-end invariants (hypothesis).

Random small workloads through the full pipeline must always satisfy the
Section 3.1 feasibility constraints under Tetris, finish every task
exactly once under every scheduler, and never over-allocate the
dimensions a scheduler checks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.model import audit_engine
from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskWork

job_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),        # tasks
        st.floats(min_value=0.5, max_value=8.0),      # cpu
        st.floats(min_value=0.5, max_value=16.0),     # mem
        st.floats(min_value=0.0, max_value=150.0),    # diskw rate
        st.floats(min_value=1.0, max_value=60.0),     # cpu work
        st.floats(min_value=0.0, max_value=50.0),     # arrival
    ),
    min_size=1,
    max_size=4,
)


def build_jobs(specs):
    jobs = []
    for tasks, cpu, mem, diskw, cpu_work, arrival in specs:
        task_list = []
        for _ in range(tasks):
            write_mb = diskw * 5.0 if diskw > 0 else 0.0
            task_list.append(
                Task(
                    DEFAULT_MODEL.vector(cpu=cpu, mem=mem, diskw=diskw),
                    TaskWork(cpu_core_seconds=cpu_work, write_mb=write_mb),
                )
            )
        jobs.append(Job([Stage("s", task_list)], arrival_time=arrival))
    return jobs


def run(scheduler, specs, num_machines=2):
    cluster = Cluster(num_machines, machines_per_rack=2, seed=0)
    jobs = build_jobs(specs)
    engine = Engine(cluster, scheduler, jobs)
    engine.run()
    return engine, jobs


class TestEngineProperties:
    @settings(deadline=None, max_examples=25)
    @given(job_specs)
    def test_tetris_runs_are_always_feasible(self, specs):
        engine, jobs = run(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)), specs
        )
        assert all(j.is_finished for j in jobs)
        report = audit_engine(engine)
        assert report.ok, report.violations[:3]

    @settings(deadline=None, max_examples=25)
    @given(job_specs)
    def test_every_task_runs_exactly_once_under_fifo(self, specs):
        engine, jobs = run(FifoScheduler(), specs)
        seen = set()
        for task, machine_id, start, booked in engine.placement_log:
            assert task.task_id not in seen
            seen.add(task.task_id)
        assert len(seen) == sum(j.num_tasks for j in jobs)

    @settings(deadline=None, max_examples=20)
    @given(job_specs)
    def test_slot_fair_never_violates_memory(self, specs):
        engine, jobs = run(SlotFairScheduler(), specs)
        report = audit_engine(engine)
        assert "mem" not in report.violated_dimensions()

    @settings(deadline=None, max_examples=20)
    @given(job_specs)
    def test_drf_never_violates_its_checked_dims(self, specs):
        engine, jobs = run(DRFScheduler(), specs)
        violated = audit_engine(engine).violated_dimensions()
        assert "cpu" not in violated
        assert "mem" not in violated

    @settings(deadline=None, max_examples=15)
    @given(job_specs, st.floats(min_value=0.0, max_value=0.9))
    def test_fairness_knob_never_breaks_completion(self, specs, knob):
        engine, jobs = run(
            TetrisScheduler(TetrisConfig(fairness_knob=knob)), specs
        )
        assert all(j.is_finished for j in jobs)

    @settings(deadline=None, max_examples=15)
    @given(job_specs)
    def test_makespan_at_least_longest_nominal_task(self, specs):
        engine, jobs = run(TetrisScheduler(), specs)
        longest = max(
            t.nominal_duration() for j in jobs for t in j.all_tasks()
        )
        assert engine.collector.makespan() >= longest - 1e-6
