"""Jain's index and CSV export tests."""

import csv

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jains_index

from conftest import make_simple_job


class TestJainsIndex:
    def test_perfectly_fair(self):
        assert jains_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_totally_unfair(self):
        assert jains_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_intermediate(self):
        value = jains_index([4, 2])
        assert 0.5 < value < 1.0

    def test_all_zero_is_fair(self):
        assert jains_index([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jains_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jains_index([-1, 2])


class TestCsvExport:
    def _collector_with_data(self):
        from repro.cluster.cluster import Cluster
        from repro.schedulers.fifo import FifoScheduler
        from repro.sim.engine import Engine

        jobs = [make_simple_job(num_tasks=2, name="j0"),
                make_simple_job(num_tasks=2, name="j1", arrival_time=3.0)]
        cluster = Cluster(2, machines_per_rack=2)
        engine = Engine(cluster, FifoScheduler(), jobs)
        return engine.run()

    def test_jobs_csv(self, tmp_path):
        collector = self._collector_with_data()
        path = tmp_path / "jobs.csv"
        collector.write_jobs_csv(path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 2
        assert {r["name"] for r in rows} == {"j0", "j1"}
        assert float(rows[0]["completion_time"]) > 0

    def test_timeline_csv(self, tmp_path):
        collector = self._collector_with_data()
        path = tmp_path / "timeline.csv"
        collector.write_timeline_csv(path)
        rows = list(csv.DictReader(path.open()))
        assert rows
        assert "demand_cpu" in rows[0]
        assert "throughput_cpu" in rows[0]

    def test_empty_timeline_rejected(self, tmp_path):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.write_timeline_csv(tmp_path / "x.csv")
