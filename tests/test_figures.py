"""Figure-rendering pipeline tests (small-scale runs)."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figures import (
    fig1_completion_times,
    fig4a_jct_cdf,
    fig5_running_tasks,
    fig5_utilization,
)
from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


@pytest.fixture(scope="module")
def small_results():
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=6, task_scale=0.02,
                            arrival_horizon=120, seed=23)
    )
    return run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "capacity": CapacityScheduler,
            "drf": DRFScheduler,
        },
        ExperimentConfig(num_machines=6, seed=23),
    )


def valid_svg(path):
    root = ET.fromstring(path.read_text())
    assert root.tag.endswith("svg")
    return path.read_text()


class TestFigureFunctions:
    def test_fig1(self, tmp_path):
        svg = valid_svg(fig1_completion_times(tmp_path / "f1.svg"))
        assert "Figure 1" in svg

    def test_fig4a(self, small_results, tmp_path):
        svg = valid_svg(
            fig4a_jct_cdf(small_results, tmp_path / "f4a.svg")
        )
        assert "vs capacity" in svg and "vs drf" in svg

    def test_fig5_running_tasks(self, small_results, tmp_path):
        svg = valid_svg(
            fig5_running_tasks(small_results, tmp_path / "f5a.svg")
        )
        assert "tetris" in svg

    def test_fig5_utilization(self, small_results, tmp_path):
        svg = valid_svg(
            fig5_utilization(small_results, tmp_path / "f5b.svg")
        )
        assert "disk-read" in svg
