"""Property tests for the federation's machine/stage partitioners.

Pinned invariants (the federation is only correct if these hold):

- **coverage** — every machine lands in exactly one shard, for any
  cluster shape and shard count;
- **cross-process determinism** — assignments are pure functions of
  their inputs: no ``hash()`` (randomized per process), no RNG, no
  clock.  The stable stage hash is checked against frozen values so a
  refactor that silently changes routing (and with it every N-shard
  run's placements) fails loudly;
- **locality-group preservation** — the rack partitioner never splits
  a rack across shards;
- **stage routing** — replica-majority wins, ties break to the
  smallest shard id, and input-free stages spread by the stable hash.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.federation import (
    machine_to_shard,
    partition_machines,
    partitioner_names,
    route_stage,
    stable_stage_hash,
)
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_task

shapes = st.tuples(
    st.integers(min_value=1, max_value=64),   # machines
    st.integers(min_value=1, max_value=16),   # machines per rack
    st.integers(min_value=1, max_value=12),   # shards
)


class TestPartitioners:
    @pytest.mark.parametrize("name", partitioner_names())
    @given(shape=shapes)
    @settings(deadline=None, max_examples=60)
    def test_every_machine_in_exactly_one_shard(self, name, shape):
        machines, per_rack, shards = shape
        cluster = Cluster(machines, machines_per_rack=per_rack, seed=0)
        assignment = partition_machines(cluster, shards, name)
        assert len(assignment) == shards
        flat = [m for shard in assignment for m in shard]
        assert sorted(flat) == list(range(machines))  # exactly once

    @pytest.mark.parametrize("name", partitioner_names())
    @given(shape=shapes)
    @settings(deadline=None, max_examples=30)
    def test_deterministic_pure_function(self, name, shape):
        """Same inputs, same assignment — and building the cluster twice
        (fresh object identities, fresh dict orders) changes nothing."""
        machines, per_rack, shards = shape
        a = partition_machines(
            Cluster(machines, machines_per_rack=per_rack, seed=0),
            shards, name,
        )
        b = partition_machines(
            Cluster(machines, machines_per_rack=per_rack, seed=0),
            shards, name,
        )
        assert a == b

    @given(shape=shapes)
    @settings(deadline=None, max_examples=60)
    def test_rack_partitioner_never_splits_racks(self, shape):
        machines, per_rack, shards = shape
        cluster = Cluster(machines, machines_per_rack=per_rack, seed=0)
        assignment = partition_machines(cluster, shards, "rack")
        owner = machine_to_shard(assignment)
        topo = cluster.topology
        for rack_id in range(topo.num_racks):
            owners = {owner[m] for m in topo.rack_members(rack_id)}
            assert len(owners) == 1, f"rack {rack_id} split across {owners}"

    def test_contiguous_is_balanced(self):
        cluster = Cluster(10, machines_per_rack=4, seed=0)
        assignment = partition_machines(cluster, 3, "contiguous")
        sizes = sorted(len(s) for s in assignment)
        assert sizes == [3, 3, 4]
        for shard in assignment:
            assert shard == list(range(shard[0], shard[0] + len(shard)))

    def test_unknown_partitioner_names_choices(self):
        cluster = Cluster(4, machines_per_rack=2, seed=0)
        with pytest.raises(KeyError, match="contiguous"):
            partition_machines(cluster, 2, "striped")

    def test_machine_to_shard_inverts(self):
        assert machine_to_shard([[0, 2], [1, 3]]) == {
            0: 0, 2: 0, 1: 1, 3: 1,
        }


class TestStableStageHash:
    def test_frozen_values(self):
        """Golden values: a change here silently re-routes every stage
        with no input locality, changing all N-shard placements."""
        assert stable_stage_hash("job-a", "map") == 0x224C7290C38A64E4
        assert stable_stage_hash("job-a", "reduce") == 0x91889519ED0ACF4D

    def test_distinct_identities_distinct_hashes(self):
        seen = {
            stable_stage_hash(f"job-{i}", s)
            for i in range(50)
            for s in ("map", "reduce")
        }
        assert len(seen) == 100

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(deadline=None, max_examples=50)
    def test_pure_and_non_negative(self, job, stage):
        value = stable_stage_hash(job, stage)
        assert value == stable_stage_hash(job, stage)
        assert 0 <= value < 2 ** 64


class TestRouteStage:
    def _stage(self, name="map", inputs_per_task=()):
        tasks = [
            make_task(inputs=[TaskInput(64.0, locs) for locs in task_locs])
            for task_locs in inputs_per_task
        ] or [make_task()]
        stage = Stage(name, tasks)

        class _FakeJob:
            name = "job-x"

        stage.job = _FakeJob()
        return stage

    def test_majority_replica_owner_wins(self):
        shard_of = {0: 0, 1: 0, 2: 1, 3: 1}
        stage = self._stage(inputs_per_task=[[(0, 2)], [(2, 3)], [(3,)]])
        # replica votes: shard 0 gets 1 (machine 0), shard 1 gets 4
        assert route_stage(stage, shard_of, 2) == 1

    def test_tie_breaks_to_smallest_shard(self):
        shard_of = {0: 0, 1: 1}
        stage = self._stage(inputs_per_task=[[(0,)], [(1,)]])
        assert route_stage(stage, shard_of, 2) == 0

    def test_no_replicas_falls_back_to_stable_hash(self):
        stage = self._stage()
        want = stable_stage_hash("job-x", "map") % 4
        assert route_stage(stage, {}, 4) == want

    def test_unknown_machines_ignored(self):
        """Replica machines outside the partition (e.g. retired ids)
        don't crash routing; they just don't vote."""
        stage = self._stage(inputs_per_task=[[(99,)]])
        want = stable_stage_hash("job-x", "map") % 3
        assert route_stage(stage, {0: 0}, 3) == want
