"""Ask-encoding tests (Section 4.4: asks stay succinct)."""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.integration.asks import Ask, build_ask, naive_ask_size_bytes
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

from conftest import make_simple_job, make_two_stage_job


class TestBuildAsk:
    def test_only_runnable_stages_included(self):
        job = make_two_stage_job(num_map=4, num_reduce=2)
        ask = build_ask(job)
        assert [s.stage for s in ask.stages] == ["map"]
        assert ask.pending_tasks == 4

    def test_demands_and_inputs_summarized(self):
        cluster = Cluster(8, machines_per_rack=4)
        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=1, task_scale=0.02, seed=5)
        )
        job = materialize_trace(trace, cluster, seed=5)[0]
        ask = build_ask(job)
        (map_ask,) = ask.stages
        assert map_ask.demands["cpu"] > 0
        assert map_ask.mean_input_mb > 0
        # inputs live on real machines
        assert all(0 <= m < 8 for m in map_ask.input_mb_by_machine)

    def test_barrier_hint_set_after_threshold(self):
        job = make_simple_job(num_tasks=10)
        for task in job.all_tasks()[:9]:
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
        ask = build_ask(job, barrier_knob=0.9)
        assert ask.stages[0].barrier_hint

    def test_barrier_hint_unset_early(self):
        job = make_simple_job(num_tasks=10)
        ask = build_ask(job, barrier_knob=0.9)
        assert not ask.stages[0].barrier_hint

    def test_json_round_trip(self):
        job = make_simple_job(num_tasks=3)
        payload = json.loads(build_ask(job).to_json())
        assert payload["stages"][0]["pending_tasks"] == 3


class TestSuccinctness:
    def test_ask_size_independent_of_cluster_size(self):
        """The paper's point: the succinct ask does not grow with the
        number of candidate machines, the naive one does."""
        cluster = Cluster(16, machines_per_rack=4)
        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=1, task_scale=0.1, seed=5)
        )
        job = materialize_trace(trace, cluster, seed=5)[0]
        ask_bytes = build_ask(job).encoded_size_bytes()
        naive_small = naive_ask_size_bytes(job, num_machines=100)
        naive_big = naive_ask_size_bytes(job, num_machines=1000)
        assert naive_big == 10 * naive_small
        assert ask_bytes < naive_small

    def test_orders_of_magnitude_at_scale(self):
        cluster = Cluster(16, machines_per_rack=4)
        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=1, task_scale=1.0, seed=5)
        )
        job = materialize_trace(trace, cluster, seed=5)[0]
        ask_bytes = build_ask(job).encoded_size_bytes()
        naive = naive_ask_size_bytes(job, num_machines=1000)
        assert naive > 50 * ask_bytes
