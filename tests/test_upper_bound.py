"""Aggregated-bin upper bound tests (Section 2.3)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.upper_bound import aggregate_upper_bound
from repro.schedulers.tetris import TetrisScheduler
from repro.sim.engine import Engine

from conftest import make_simple_job, make_two_stage_job


def fb_caps(num_machines):
    cluster = Cluster(num_machines)
    return cluster.total_capacity(), cluster.machine_capacity()


class TestUpperBound:
    def test_single_job_duration(self):
        total, per_machine = fb_caps(2)
        job = make_simple_job(num_tasks=4, cpu=2, cpu_work=20)
        result = aggregate_upper_bound([job], total, per_machine)
        # 4 tasks of 10s each all fit at once in the aggregate bin
        assert result.makespan == pytest.approx(10.0)
        assert result.mean_jct == pytest.approx(10.0)

    def test_capacity_serializes_tasks(self):
        total, per_machine = fb_caps(1)  # 16 cores total
        job = make_simple_job(num_tasks=4, cpu=8, cpu_work=80)
        result = aggregate_upper_bound([job], total, per_machine)
        # 2 tasks at a time, 10s each -> 20s
        assert result.makespan == pytest.approx(20.0)

    def test_barrier_respected(self):
        total, per_machine = fb_caps(4)
        job = make_two_stage_job(num_map=2, num_reduce=2)
        result = aggregate_upper_bound([job], total, per_machine)
        map_t = job.dag.roots()[0].tasks[0].nominal_duration()
        reduce_t = job.dag.leaves()[0].tasks[0].nominal_duration()
        assert result.makespan == pytest.approx(map_t + reduce_t)

    def test_arrivals_respected(self):
        total, per_machine = fb_caps(4)
        job = make_simple_job(num_tasks=1, cpu=1, cpu_work=10,
                              arrival_time=100.0)
        result = aggregate_upper_bound([job], total, per_machine)
        assert result.completion_times[job.job_id] == pytest.approx(10.0)
        assert result.makespan == pytest.approx(10.0)  # from first arrival

    def test_arrivals_can_be_ignored(self):
        total, per_machine = fb_caps(4)
        jobs = [make_simple_job(num_tasks=1, cpu=1, cpu_work=10,
                                arrival_time=100.0 * i)
                for i in range(3)]
        result = aggregate_upper_bound(
            jobs, total, per_machine, consider_arrivals=False
        )
        assert result.makespan == pytest.approx(10.0)

    def test_srtf_ordering_prefers_small_jobs(self):
        total, per_machine = fb_caps(1)
        small = make_simple_job(num_tasks=2, cpu=8, cpu_work=80,
                                name="small")
        big = make_simple_job(num_tasks=8, cpu=8, cpu_work=80, name="big")
        result = aggregate_upper_bound([big, small], total, per_machine)
        assert (
            result.completion_times[small.job_id]
            < result.completion_times[big.job_id]
        )

    def test_input_jobs_not_mutated(self):
        total, per_machine = fb_caps(2)
        job = make_simple_job(num_tasks=2)
        aggregate_upper_bound([job], total, per_machine)
        assert not job.is_finished
        assert all(t.state.value == "runnable" for t in job.all_tasks())

    def test_roughly_bounds_the_simulator(self):
        """The relaxation solves a much easier problem (one aggregate
        bin, no placement, no contention) so it should be at least about
        as fast as the real engine under Tetris.  It is solved greedily,
        so — exactly as the paper concedes ("not a true upper bound") —
        it can occasionally trail the engine by a sliver; we allow 10%.
        """
        jobs = [make_two_stage_job(num_map=6, num_reduce=2,
                                   arrival_time=2.0 * i, name=f"j{i}")
                for i in range(4)]
        cluster = Cluster(2, machines_per_rack=2)
        ub = aggregate_upper_bound(
            jobs, cluster.total_capacity(), cluster.machine_capacity()
        )
        engine = Engine(cluster, TetrisScheduler(), jobs)
        collector = engine.run()
        assert ub.makespan <= collector.makespan() * 1.1
        assert ub.mean_jct <= collector.mean_jct() * 1.1
