"""Unit tests for the packing-fidelity helpers (repro.metrics.fidelity).

These gate the federation's "within 5% of centralized" acceptance
criterion, so the delta arithmetic and the tolerance logic are pinned
directly: signed deltas (positive = candidate worse), percentage points
for the already-relative fragmentation number, and a ``within`` that
never penalizes a candidate for being *better*.
"""

import math
from types import SimpleNamespace

import pytest

from repro.metrics import (
    FidelityReport,
    packing_fidelity,
    timeline_fragmentation,
)
from repro.metrics.collector import TimelinePoint
from repro.metrics.fidelity import _delta_pct


def _point(time, demand):
    return TimelinePoint(
        time=time,
        running_tasks=0,
        demand_utilization=demand,
        throughput_utilization={},
    )


def _collector(points):
    return SimpleNamespace(timeline=list(points))


class TestDeltaPct:
    def test_signed_relative_percent(self):
        assert _delta_pct(100.0, 110.0) == pytest.approx(10.0)
        assert _delta_pct(100.0, 95.0) == pytest.approx(-5.0)

    def test_zero_reference(self):
        assert _delta_pct(0.0, 0.0) == 0.0
        assert _delta_pct(0.0, 1.0) == math.inf


class TestTimelineFragmentation:
    def test_empty_timeline_is_zero(self):
        assert timeline_fragmentation(_collector([])) == 0.0

    def test_mean_slack_on_bottleneck_dimension(self):
        # sample 1: bottleneck cpu at 0.8 -> slack 0.2
        # sample 2: bottleneck mem at 0.5 -> slack 0.5
        collector = _collector([
            _point(0.0, {"cpu": 0.8, "mem": 0.3}),
            _point(1.0, {"cpu": 0.2, "mem": 0.5}),
        ])
        assert timeline_fragmentation(collector) == pytest.approx(0.35)

    def test_overcommit_clamps_to_zero_slack(self):
        collector = _collector([_point(0.0, {"cpu": 1.4})])
        assert timeline_fragmentation(collector) == 0.0

    def test_dimensionless_sample_counts_as_idle(self):
        collector = _collector([_point(0.0, {})])
        assert timeline_fragmentation(collector) == 1.0


class TestFidelityReport:
    def _report(self, **overrides):
        fields = dict(
            makespan_ref=1000.0,
            makespan_cand=1030.0,
            mean_jct_ref=200.0,
            mean_jct_cand=204.0,
            fragmentation_ref=0.20,
            fragmentation_cand=0.23,
        )
        fields.update(overrides)
        return FidelityReport(**fields)

    def test_deltas(self):
        report = self._report()
        assert report.makespan_delta_pct == pytest.approx(3.0)
        assert report.mean_jct_delta_pct == pytest.approx(2.0)
        assert report.fragmentation_delta_points == pytest.approx(3.0)

    def test_within_tolerance(self):
        assert self._report().within(5.0)
        assert not self._report().within(2.5)  # makespan +3% breaches

    def test_within_gates_makespan_and_jct_only(self):
        # fragmentation is a diagnosis, not a gated outcome
        report = self._report(fragmentation_cand=0.90)
        assert report.within(5.0)

    def test_better_candidate_always_within(self):
        report = self._report(makespan_cand=900.0, mean_jct_cand=150.0)
        assert report.within(0.0)

    def test_either_regression_breaches(self):
        assert not self._report(mean_jct_cand=260.0).within(5.0)
        assert not self._report(makespan_cand=1200.0).within(5.0)

    def test_rows_and_dict_agree(self):
        report = self._report()
        rows = {row["metric"]: row for row in report.rows()}
        assert rows["makespan"]["delta_pct"] == report.makespan_delta_pct
        assert rows["mean_jct"]["delta_pct"] == report.mean_jct_delta_pct
        assert (
            rows["fragmentation"]["delta_pct"]
            == report.fragmentation_delta_points
        )
        as_dict = report.as_dict()
        assert as_dict["makespan_delta_pct"] == report.makespan_delta_pct
        assert as_dict["fragmentation_delta_points"] == pytest.approx(3.0)


class TestPackingFidelity:
    def test_builds_report_from_run_results(self):
        reference = SimpleNamespace(
            makespan=1000.0,
            mean_jct=200.0,
            collector=_collector([_point(0.0, {"cpu": 0.8})]),
        )
        candidate = SimpleNamespace(
            makespan=1050.0,
            mean_jct=210.0,
            collector=_collector([_point(0.0, {"cpu": 0.6})]),
        )
        report = packing_fidelity(reference, candidate)
        assert report.makespan_delta_pct == pytest.approx(5.0)
        assert report.mean_jct_delta_pct == pytest.approx(5.0)
        assert report.fragmentation_ref == pytest.approx(0.2)
        assert report.fragmentation_cand == pytest.approx(0.4)
        assert report.fragmentation_delta_points == pytest.approx(20.0)
        assert not report.within(4.9)
        assert report.within(5.0)
