"""Deep unit tests of Tetris's internal machinery."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler, _Candidate
from repro.workload.task import TaskInput

from conftest import make_simple_job, make_task


def bound(config=None, machines=2):
    scheduler = TetrisScheduler(config or TetrisConfig(fairness_knob=0.0))
    scheduler.bind(Cluster(machines, machines_per_rack=2))
    return scheduler


def arrive(scheduler, *jobs):
    for job in jobs:
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)


class TestCombinedScore:
    def test_pick_best_matches_hand_computation(self):
        scheduler = bound()
        c1 = _Candidate(task=None, booked=None, alignment=0.6,
                        remaining_work=10.0)
        c2 = _Candidate(task=None, booked=None, alignment=0.4,
                        remaining_work=1.0)
        # a_bar = 0.5, p_bar = 5.5, eps = 0.0909..
        # score1 = 0.6 - eps*10 = -0.309; score2 = 0.4 - eps*1 = 0.309
        best = scheduler._pick_best([c1, c2])
        assert best is c2

    def test_alignment_wins_when_work_equal(self):
        scheduler = bound()
        c1 = _Candidate(None, None, alignment=0.6, remaining_work=5.0)
        c2 = _Candidate(None, None, alignment=0.4, remaining_work=5.0)
        assert scheduler._pick_best([c1, c2]) is c1

    def test_zero_work_jobs_fall_back_to_alignment(self):
        scheduler = bound()
        c1 = _Candidate(None, None, alignment=0.2, remaining_work=0.0)
        c2 = _Candidate(None, None, alignment=0.9, remaining_work=0.0)
        assert scheduler._pick_best([c1, c2]) is c2

    def test_srtf_multiplier_scales_the_term(self):
        config = TetrisConfig(fairness_knob=0.0, srtf_multiplier=100.0)
        scheduler = bound(config)
        c_big_aligned = _Candidate(None, None, 0.9, remaining_work=10.0)
        c_small_job = _Candidate(None, None, 0.1, remaining_work=1.0)
        assert scheduler._pick_best(
            [c_big_aligned, c_small_job]
        ) is c_small_job


class TestRemoteGrants:
    def _scheduler_with_remote_job(self):
        scheduler = bound(machines=3)
        job = make_simple_job(num_tasks=1, cpu=1, mem=1)
        task = job.all_tasks()[0]
        task.demands.set("netin", 60.0)
        task.inputs.append(TaskInput(100, (2,)))
        arrive(scheduler, job)
        return scheduler, task

    def test_grant_recorded_on_placement(self):
        scheduler, task = self._scheduler_with_remote_job()
        placements = scheduler.schedule(0.0, machine_ids=[0])
        assert len(placements) == 1
        assert scheduler._remote_granted.get(2, 0.0) == pytest.approx(60.0)

    def test_grant_released_on_finish(self):
        scheduler, task = self._scheduler_with_remote_job()
        scheduler.schedule(0.0, machine_ids=[0])
        task.mark_running(0, 0.0)
        task.mark_finished(5.0)
        task.job.note_task_finished()
        scheduler.on_task_finished(task, 5.0)
        assert scheduler._remote_granted.get(2, 0.0) == pytest.approx(0.0)

    def test_grant_released_on_failure(self):
        scheduler, task = self._scheduler_with_remote_job()
        scheduler.schedule(0.0, machine_ids=[0])
        task.mark_running(0, 0.0)
        scheduler.on_task_failed(task, 5.0)
        task.mark_failed(5.0)
        assert scheduler._remote_granted.get(2, 0.0) == pytest.approx(0.0)
        # and the task is a candidate again
        assert scheduler.index.any_candidate(task.stage) is task

    def test_grants_block_further_readers(self):
        scheduler = bound(machines=3)
        jobs = []
        for _ in range(4):
            job = make_simple_job(num_tasks=1, cpu=1, mem=1)
            task = job.all_tasks()[0]
            task.demands.set("netin", 60.0)
            task.inputs.append(TaskInput(100, (2,)))
            jobs.append(job)
        arrive(scheduler, *jobs)
        placements = scheduler.schedule(0.0, machine_ids=[0, 1])
        # source machine 2 has 125 MB/s netout: only 2 x 60 fit
        assert len(placements) == 2


class TestBarrierStages:
    def test_only_past_threshold_stages(self):
        scheduler = bound(TetrisConfig(fairness_knob=0.0,
                                       barrier_knob=0.5))
        job = make_simple_job(num_tasks=4)
        arrive(scheduler, job)
        stage = job.dag.roots()[0]
        assert scheduler._barrier_stages([job]) == set()
        for task in stage.tasks[:2]:
            task.mark_running(0, 0.0)
            task.mark_finished(1.0)
        assert scheduler._barrier_stages([job]) == {stage.stage_id}

    def test_finished_stage_excluded(self):
        scheduler = bound(TetrisConfig(fairness_knob=0.0,
                                       barrier_knob=0.5))
        job = make_simple_job(num_tasks=1)
        arrive(scheduler, job)
        task = job.all_tasks()[0]
        task.mark_running(0, 0.0)
        task.mark_finished(1.0)
        assert scheduler._barrier_stages([job]) == set()


class TestMaskedDims:
    def test_masked_vector(self):
        scheduler = bound(TetrisConfig(considered_dims=("cpu", "mem")))
        v = DEFAULT_MODEL.vector(cpu=2, mem=4, diskr=100)
        masked = scheduler._masked(v)
        assert masked.get("cpu") == 2
        assert masked.get("diskr") == 0

    def test_fit_check_ignores_masked_dims(self):
        scheduler = bound(TetrisConfig(considered_dims=("cpu",)))
        booked = DEFAULT_MODEL.vector(cpu=2, diskw=10_000)
        free = DEFAULT_MODEL.vector(cpu=4)
        assert scheduler._fits(booked, free)


class TestBookedClamp:
    def test_fluid_estimates_clamped_to_capacity(self):
        scheduler = bound()
        job = make_simple_job(num_tasks=1, cpu=1, mem=1)
        task = job.all_tasks()[0]
        task.demands.set("diskw", 10_000.0)
        task.work.write_mb = 100.0
        arrive(scheduler, job)
        booked = scheduler.booked_demands(task, 0)
        assert booked.get("diskw") == pytest.approx(200.0)

    def test_rigid_estimates_not_clamped(self):
        scheduler = bound()
        job = make_simple_job(num_tasks=1, cpu=1, mem=500)
        task = job.all_tasks()[0]
        arrive(scheduler, job)
        booked = scheduler.booked_demands(task, 0)
        assert booked.get("mem") == 500.0  # genuinely unschedulable
