"""The scheduler federation's correctness bar.

- ``--shards 1`` is *bit-identical* to the centralized scheduler:
  placements and decision-trace events match exactly (property-tested
  over generated workloads, mirroring ``test_soa_identity``);
- N-shard runs are deterministic for a fixed (seed, N, partitioner);
- the distributed (process) backend reproduces the inline backend's
  placements through the delta-sync mirror protocol;
- the round sequencer rejects duplicate / capacity / remote conflicts
  and commits everything else;
- starved stages are promoted to floating, and the conflict counters
  are exported through the metrics registry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.federation import (
    CONFLICT_KINDS,
    FederatedScheduler,
    FederationConfig,
    RoundSequencer,
)
from repro.obs.registry import Registry
from repro.obs.trace import DecisionTrace
from repro.resources import DEFAULT_MODEL
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

from conftest import make_simple_job


def _workload(seed, num_jobs=8, horizon=150.0):
    return generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs,
            task_scale=0.05,
            arrival_horizon=horizon,
            seed=seed,
        )
    )


def _run(
    trace,
    seed=0,
    num_machines=8,
    shards=None,
    backend="inline",
    spill_after=15.0,
    decision_trace=None,
    metrics=None,
    partitioner="rack",
):
    """Run the trace; shards=None means the bare centralized scheduler."""
    cluster = Cluster(num_machines, machines_per_rack=4, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    scheduler = TetrisScheduler(TetrisConfig())
    fed = None
    if shards is not None:
        fed = FederatedScheduler(
            scheduler,
            FederationConfig(
                num_shards=shards,
                backend=backend,
                partitioner=partitioner,
                spill_after=spill_after,
            ),
        )
        if backend == "process":
            from repro.experiments.harness import ExperimentConfig

            fed.provide_workload(
                trace,
                ExperimentConfig(
                    num_machines=num_machines,
                    machines_per_rack=4,
                    seed=seed,
                ),
            )
        scheduler = fed
    engine = Engine(
        cluster,
        scheduler,
        jobs,
        config=EngineConfig(seed=seed),
        decision_trace=decision_trace,
        metrics=metrics,
    )
    try:
        engine.run()
    finally:
        if fed is not None:
            fed.close()
    assert all(j.is_finished for j in jobs)
    return [
        (task.job.name, task.stage.name, task.index, machine_id, time)
        for (task, machine_id, time, _booked) in engine.placement_log
    ]


def _runnable_job(num_tasks=3, **kw):
    job = make_simple_job(num_tasks=num_tasks, **kw)
    job.arrive()
    job.note_task_finished()  # releases the first wave
    return job


# -- the standing invariant: one shard == centralized -----------------------

class TestSingleShardIdentity:
    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=5)
    def test_placements_bit_identical(self, seed):
        trace = _workload(seed=seed % 997)
        want = _run(trace, seed=seed % 31)
        assert len(want) > 0
        got = _run(trace, seed=seed % 31, shards=1)
        assert got == want

    def test_decision_stream_bit_identical(self):
        trace = _workload(seed=29)
        with DecisionTrace() as ref_sink:
            _run(trace, decision_trace=ref_sink)
            want = ref_sink.events()
        with DecisionTrace() as got_sink:
            _run(trace, shards=1, decision_trace=got_sink)
            got = got_sink.events()
        assert len(want) > 0
        assert got == want

    def test_facade_reports_inner_name(self):
        fed = FederatedScheduler(TetrisScheduler())
        assert fed.name == "tetris"


# -- N-shard behaviour ------------------------------------------------------

class TestShardedRuns:
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("partitioner", ["rack", "contiguous"])
    def test_deterministic_for_fixed_config(self, shards, partitioner):
        trace = _workload(seed=11)
        first = _run(trace, shards=shards, partitioner=partitioner)
        second = _run(trace, shards=shards, partitioner=partitioner)
        assert len(first) > 0
        assert first == second

    def test_all_work_places_under_sharding(self):
        """Every task of every job runs to completion — routing plus the
        spill path leave no stage stranded on an overloaded shard."""
        trace = _workload(seed=5, num_jobs=10)
        placements = _run(trace, shards=4, spill_after=5.0)
        want = sum(ts.num_tasks for tj in trace for ts in tj.stages)
        assert len({p[:3] for p in placements}) == want

    def test_conflict_metrics_exported(self):
        registry = Registry()
        trace = _workload(seed=7)
        _run(trace, shards=3, metrics=registry)
        snap = registry.snapshot()
        assert snap["repro_federation_shards"]["values"][""] == 3
        for name in (
            "repro_federation_proposals_total",
            "repro_federation_commits_total",
            "repro_federation_conflicts_total",
            "repro_federation_retries_total",
            "repro_federation_aborts_total",
            "repro_federation_spills_total",
            "repro_federation_commit_seconds",
        ):
            assert name in snap, name
        for kind in CONFLICT_KINDS:
            assert (
                f"kind={kind}"
                in snap["repro_federation_conflicts_total"]["values"]
            )
        proposals = snap["repro_federation_proposals_total"]["values"][""]
        commits = snap["repro_federation_commits_total"]["values"][""]
        assert proposals >= commits > 0

    def test_rejects_non_tetris_scheduler(self):
        from repro.schedulers.capacity import CapacityScheduler

        with pytest.raises(ValueError, match="tetris"):
            FederatedScheduler(CapacityScheduler())


# -- distributed (process) backend ------------------------------------------

class TestProcessBackend:
    def test_matches_inline_placements(self):
        """The delta-synced worker mirrors propose exactly what in-process
        shards propose: end-to-end placements agree across backends."""
        trace = _workload(seed=13, num_jobs=6, horizon=100.0)
        inline = _run(trace, shards=2, backend="inline")
        process = _run(trace, shards=2, backend="process")
        assert len(inline) > 0
        assert process == inline

    def test_requires_workload_spec(self):
        fed = FederatedScheduler(
            TetrisScheduler(),
            FederationConfig(num_shards=2, backend="process"),
        )
        fed.bind(Cluster(4, machines_per_rack=2, seed=0))
        with pytest.raises(RuntimeError, match="provide_workload"):
            fed.schedule(0.0, [0, 1])

    def test_rejects_tracker(self):
        from repro.estimation.tracker import ResourceTracker

        cluster = Cluster(4, machines_per_rack=2, seed=0)
        fed = FederatedScheduler(
            TetrisScheduler(),
            FederationConfig(num_shards=2, backend="process"),
        )
        with pytest.raises(ValueError, match="tracker"):
            fed.bind(cluster, tracker=ResourceTracker(cluster))


# -- the round sequencer ----------------------------------------------------

class TestRoundSequencer:
    def _cluster(self):
        return Cluster(2, machines_per_rack=2, seed=3)

    def test_commits_and_rejects_duplicates(self):
        cluster = self._cluster()
        job = _runnable_job()
        task = job.dag.stages[0].tasks[0]
        seq = RoundSequencer(cluster)
        booked = task.demands.copy()
        assert seq.offer(task, 0, booked) is None
        assert seq.offer(task, 1, booked) == "duplicate"
        assert [p.task for p in seq.committed] == [task]

    def test_rejects_non_runnable(self):
        cluster = self._cluster()
        job = _runnable_job()
        task = job.dag.stages[0].tasks[0]
        task.mark_running(0, 0.0)
        seq = RoundSequencer(cluster)
        assert seq.offer(task, 0, task.demands.copy()) == "duplicate"

    def test_capacity_replay_catches_stale_fits(self):
        cluster = self._cluster()
        job = _runnable_job(num_tasks=2)
        a, b = job.dag.stages[0].tasks[:2]
        # each one alone fits; together they oversubscribe the machine
        big = cluster.machine_capacity() * 0.6
        seq = RoundSequencer(cluster, replay_fit=True)
        assert seq.offer(a, 0, big.copy()) is None
        assert seq.offer(b, 0, big.copy()) == "capacity"
        # without replay (inline shards plan sequentially against the
        # live state) the same offer is accepted
        seq2 = RoundSequencer(cluster, replay_fit=False)
        assert seq2.offer(a, 0, big.copy()) is None
        assert seq2.offer(b, 0, big.copy()) is None

    def test_remote_grants_respect_global_headroom(self):
        cluster = self._cluster()
        job = _runnable_job(num_tasks=2)
        a, b = job.dag.stages[0].tasks[:2]
        free = cluster.machine(1).free_clamped_view()
        headroom = min(free.get("netout"), free.get("diskr"))
        seq = RoundSequencer(cluster)
        small = DEFAULT_MODEL.vector(cpu=0.1, mem=0.1)
        # first grant consumes most of machine 1's outbound headroom
        assert seq.offer(a, 0, small.copy(),
                         grants=[(1, headroom * 0.7)]) is None
        # a second grant that alone would fit is rejected globally
        assert seq.offer(b, 0, small.copy(),
                         grants=[(1, headroom * 0.7)]) == "remote"
        assert seq.remote_total[1] == pytest.approx(headroom * 0.7)

    def test_base_remote_ledger_charged(self):
        cluster = self._cluster()
        job = _runnable_job()
        task = job.dag.stages[0].tasks[0]
        free = cluster.machine(1).free_clamped_view()
        headroom = min(free.get("netout"), free.get("diskr"))
        seq = RoundSequencer(cluster, base_remote={1: headroom * 0.9})
        small = DEFAULT_MODEL.vector(cpu=0.1, mem=0.1)
        assert seq.offer(task, 0, small.copy(),
                         grants=[(1, headroom * 0.2)]) == "remote"


# -- spill promotion --------------------------------------------------------

class TestSpillPromotion:
    def test_starved_stage_floats_to_all_shards(self):
        cluster = Cluster(4, machines_per_rack=2, seed=1)
        fed = FederatedScheduler(
            TetrisScheduler(),
            FederationConfig(num_shards=2, spill_after=10.0),
        )
        fed.bind(cluster)
        job = _runnable_job()
        fed.on_job_arrival(job, 0.0)
        stage = job.dag.stages[0]
        home = fed._route(stage)
        assert stage.stage_id in fed.inners[home].index._entries
        # within the window: not floating yet
        fed._promote_starved(9.0)
        assert stage.stage_id not in fed._floating
        fed._promote_starved(10.5)
        assert stage.stage_id in fed._floating
        for inner in fed.inners:
            assert stage.stage_id in inner.index._entries

    def test_commit_resets_the_clock(self):
        cluster = Cluster(4, machines_per_rack=2, seed=1)
        fed = FederatedScheduler(
            TetrisScheduler(),
            FederationConfig(num_shards=2, spill_after=10.0),
        )
        fed.bind(cluster)
        job = _runnable_job()
        fed.on_job_arrival(job, 0.0)
        stage = job.dag.stages[0]
        fed._note_commit(stage.tasks[0], 8.0)
        fed._promote_starved(12.0)  # 4s since last progress: stays home
        assert stage.stage_id not in fed._floating

    def test_spill_disabled(self):
        cluster = Cluster(4, machines_per_rack=2, seed=1)
        fed = FederatedScheduler(
            TetrisScheduler(),
            FederationConfig(num_shards=2, spill_after=None),
        )
        fed.bind(cluster)
        job = _runnable_job()
        fed.on_job_arrival(job, 0.0)
        fed._promote_starved(1e9)
        assert not fed._floating


class TestFederationConfig:
    def test_validates(self):
        with pytest.raises(ValueError, match="num_shards"):
            FederationConfig(num_shards=0)
        with pytest.raises(ValueError, match="backend"):
            FederationConfig(backend="threads")
        with pytest.raises(ValueError, match="spill_after"):
            FederationConfig(spill_after=0.0)

    def test_conflict_kinds_closed(self):
        assert CONFLICT_KINDS == ("duplicate", "capacity", "remote")
