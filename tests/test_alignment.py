"""Alignment scorer tests (Table 8 candidates)."""

import pytest

from repro.resources import DEFAULT_MODEL
from repro.schedulers.alignment import (
    ALIGNMENT_SCORERS,
    CosineAlignment,
    FFDProdAlignment,
    FFDSumAlignment,
    L2NormDiffAlignment,
    L2NormRatioAlignment,
    get_scorer,
)


def vec(**kw):
    return DEFAULT_MODEL.vector(**kw)


class TestRegistry:
    def test_all_five_table8_scorers_present(self):
        assert set(ALIGNMENT_SCORERS) == {
            "cosine", "l2norm-diff", "l2norm-ratio", "ffd-prod", "ffd-sum",
        }

    def test_get_scorer(self):
        assert isinstance(get_scorer("cosine"), CosineAlignment)

    def test_unknown_scorer(self):
        with pytest.raises(ValueError, match="unknown alignment scorer"):
            get_scorer("magic")


class TestCosine:
    def test_dot_product(self):
        score = CosineAlignment().score(
            vec(cpu=0.5, mem=0.25), vec(cpu=1.0, mem=0.5)
        )
        assert score == pytest.approx(0.5 * 1.0 + 0.25 * 0.5)

    def test_prefers_larger_task(self):
        free = vec(cpu=1.0, mem=1.0)
        small = CosineAlignment().score(vec(cpu=0.1, mem=0.1), free)
        large = CosineAlignment().score(vec(cpu=0.5, mem=0.5), free)
        assert large > small

    def test_prefers_abundant_resource_users(self):
        """If the network is free, a network-intensive task scores higher
        than a disk-intensive one of the same total size (Section 1)."""
        free = vec(cpu=0.5, mem=0.5, diskr=0.1, netin=0.9)
        disk_task = vec(cpu=0.1, diskr=0.4)
        net_task = vec(cpu=0.1, netin=0.4)
        scorer = CosineAlignment()
        assert scorer.score(net_task, free) > scorer.score(disk_task, free)


class TestL2Norms:
    def test_diff_prefers_demand_close_to_availability(self):
        free = vec(cpu=0.5, mem=0.5)
        close = vec(cpu=0.5, mem=0.4)
        far = vec(cpu=0.1, mem=0.1)
        scorer = L2NormDiffAlignment()
        assert scorer.score(close, free) > scorer.score(far, free)

    def test_diff_perfect_fit_scores_zero(self):
        free = vec(cpu=0.3, mem=0.3)
        assert L2NormDiffAlignment().score(free, free) == 0.0

    def test_ratio_prefers_high_fill(self):
        free = vec(cpu=0.5, mem=0.5)
        scorer = L2NormRatioAlignment()
        assert scorer.score(vec(cpu=0.5), free) > scorer.score(
            vec(cpu=0.1), free
        )

    def test_ratio_ignores_zero_availability_dims(self):
        free = vec(cpu=0.5)
        score = L2NormRatioAlignment().score(vec(cpu=0.5, mem=0.2), free)
        assert score == pytest.approx(1.0)


class TestFFD:
    def test_prod_over_nonzero_dims(self):
        score = FFDProdAlignment().score(vec(cpu=0.5, mem=0.4), vec())
        assert score == pytest.approx(0.2)

    def test_prod_zero_task(self):
        assert FFDProdAlignment().score(vec(), vec()) == 0.0

    def test_sum(self):
        assert FFDSumAlignment().score(
            vec(cpu=0.5, mem=0.25), vec()
        ) == pytest.approx(0.75)

    def test_ffd_ignores_availability(self):
        a1 = vec(cpu=1.0, mem=1.0)
        a2 = vec(cpu=0.1, mem=0.1)
        d = vec(cpu=0.3, mem=0.3)
        assert FFDSumAlignment().score(d, a1) == FFDSumAlignment().score(d, a2)
        assert FFDProdAlignment().score(d, a1) == FFDProdAlignment().score(d, a2)
