"""Alignment scorer tests (Table 8 candidates)."""

import numpy as np
import pytest

from repro.resources import DEFAULT_MODEL, ResourceVector
from repro.schedulers.alignment import (
    ALIGNMENT_SCORERS,
    AlignmentScorer,
    CosineAlignment,
    FFDProdAlignment,
    FFDSumAlignment,
    L2NormDiffAlignment,
    L2NormRatioAlignment,
    get_scorer,
)


def vec(**kw):
    return DEFAULT_MODEL.vector(**kw)


class TestRegistry:
    def test_all_five_table8_scorers_present(self):
        assert set(ALIGNMENT_SCORERS) == {
            "cosine", "l2norm-diff", "l2norm-ratio", "ffd-prod", "ffd-sum",
        }

    def test_get_scorer(self):
        assert isinstance(get_scorer("cosine"), CosineAlignment)

    def test_unknown_scorer(self):
        with pytest.raises(ValueError, match="unknown alignment scorer"):
            get_scorer("magic")


class TestCosine:
    def test_dot_product(self):
        score = CosineAlignment().score(
            vec(cpu=0.5, mem=0.25), vec(cpu=1.0, mem=0.5)
        )
        assert score == pytest.approx(0.5 * 1.0 + 0.25 * 0.5)

    def test_prefers_larger_task(self):
        free = vec(cpu=1.0, mem=1.0)
        small = CosineAlignment().score(vec(cpu=0.1, mem=0.1), free)
        large = CosineAlignment().score(vec(cpu=0.5, mem=0.5), free)
        assert large > small

    def test_prefers_abundant_resource_users(self):
        """If the network is free, a network-intensive task scores higher
        than a disk-intensive one of the same total size (Section 1)."""
        free = vec(cpu=0.5, mem=0.5, diskr=0.1, netin=0.9)
        disk_task = vec(cpu=0.1, diskr=0.4)
        net_task = vec(cpu=0.1, netin=0.4)
        scorer = CosineAlignment()
        assert scorer.score(net_task, free) > scorer.score(disk_task, free)


class TestL2Norms:
    def test_diff_prefers_demand_close_to_availability(self):
        free = vec(cpu=0.5, mem=0.5)
        close = vec(cpu=0.5, mem=0.4)
        far = vec(cpu=0.1, mem=0.1)
        scorer = L2NormDiffAlignment()
        assert scorer.score(close, free) > scorer.score(far, free)

    def test_diff_perfect_fit_scores_zero(self):
        free = vec(cpu=0.3, mem=0.3)
        assert L2NormDiffAlignment().score(free, free) == 0.0

    def test_ratio_prefers_high_fill(self):
        free = vec(cpu=0.5, mem=0.5)
        scorer = L2NormRatioAlignment()
        assert scorer.score(vec(cpu=0.5), free) > scorer.score(
            vec(cpu=0.1), free
        )

    def test_ratio_ignores_zero_availability_dims(self):
        free = vec(cpu=0.5)
        score = L2NormRatioAlignment().score(vec(cpu=0.5, mem=0.2), free)
        assert score == pytest.approx(1.0)


class TestFFD:
    def test_prod_over_nonzero_dims(self):
        score = FFDProdAlignment().score(vec(cpu=0.5, mem=0.4), vec())
        assert score == pytest.approx(0.2)

    def test_prod_zero_task(self):
        assert FFDProdAlignment().score(vec(), vec()) == 0.0

    def test_sum(self):
        assert FFDSumAlignment().score(
            vec(cpu=0.5, mem=0.25), vec()
        ) == pytest.approx(0.75)

    def test_ffd_ignores_availability(self):
        a1 = vec(cpu=1.0, mem=1.0)
        a2 = vec(cpu=0.1, mem=0.1)
        d = vec(cpu=0.3, mem=0.3)
        assert FFDSumAlignment().score(d, a1) == FFDSumAlignment().score(d, a2)
        assert FFDProdAlignment().score(d, a1) == FFDProdAlignment().score(d, a2)


class TestScoreBatch:
    """score_batch must reproduce the scalar oracle *bit-for-bit* — that
    exactness is what makes the vectorized packing engine's placements
    identical to the scalar scheduler's."""

    def _rows(self, seed, n=40):
        rng = np.random.default_rng(seed)
        demands = rng.uniform(0.0, 1.0, size=(n, DEFAULT_MODEL.dims))
        # sprinkle exact zeros: FFD-Prod's active-dimension logic and
        # L2-Norm-Ratio's zero-availability guard must agree with scalar
        demands[rng.uniform(size=demands.shape) < 0.3] = 0.0
        available = rng.uniform(0.0, 1.0, size=DEFAULT_MODEL.dims)
        available[rng.uniform(size=available.shape) < 0.25] = 0.0
        return demands, available

    @pytest.mark.parametrize("name", sorted(ALIGNMENT_SCORERS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_scalar_exactly(self, name, seed):
        scorer = get_scorer(name)
        demands, available = self._rows(seed)
        batch = scorer.score_batch(demands, available)
        avail_vec = ResourceVector(DEFAULT_MODEL, available.copy())
        for i in range(demands.shape[0]):
            scalar = scorer.score(
                ResourceVector(DEFAULT_MODEL, demands[i].copy()), avail_vec
            )
            assert batch[i] == scalar, (name, i)

    def test_base_scorer_has_no_batch(self):
        class Custom(AlignmentScorer):
            def score(self, demand, available):
                return 0.0

        with pytest.raises(NotImplementedError, match="batched"):
            Custom().score_batch(np.zeros((1, 6)), np.zeros(6))
