"""Tests for the RunSpec layer and the execution backends.

The failure-injection schedulers live at module level so they pickle by
reference under any multiprocessing start method.
"""

import os
import pickle
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import (
    ExecutionError,
    ProcessPoolBackend,
    RunSpec,
    SerialBackend,
    execute,
    raise_on_failure,
    resolve_workers,
    run_specs,
    spawn_seeds,
)
from repro.exec.backends import get_backend
from repro.experiments.harness import ExperimentConfig, run_trace
from repro.experiments.replication import replicate
from repro.experiments.harness import run_comparison
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.registry import build_scheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

GRID_SCHEDULERS = ("tetris", "slot-fair", "drf", "fifo")


@pytest.fixture(scope="module")
def small_trace():
    return tuple(generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=5, task_scale=0.02,
                            arrival_horizon=100, seed=11)
    ))


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(num_machines=6)


class ExplodingScheduler(FifoScheduler):
    """Raises from inside the engine loop — a failing grid cell."""

    name = "exploding"

    def schedule(self, now, machine_ids=None):
        raise RuntimeError("injected failure")


class HangingScheduler(FifoScheduler):
    """Blocks forever in its first scheduling round."""

    name = "hanging"

    def schedule(self, now, machine_ids=None):
        time.sleep(300)
        return []


def _crash_hard(_item):
    """Worker body that dies without reporting (simulated OOM kill)."""
    os._exit(23)


def _sleep_long(_item):
    """Worker body that outlives any test timeout."""
    time.sleep(300)


def _double(x):
    return x * 2


def _getpid(_item):
    return os.getpid()


def _crash_on_zero(item):
    if item == 0:
        os._exit(23)
    return os.getpid()


# ---------------------------------------------------------------------------
# seeds
# ---------------------------------------------------------------------------

class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(42, 4) == spawn_seeds(42, 4)

    def test_distinct_children(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16

    def test_prefix_stable(self):
        assert spawn_seeds(7, 3) == spawn_seeds(7, 8)[:3]

    def test_different_bases_differ(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    @given(
        base=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=24),
        extra=st.integers(min_value=0, max_value=24),
    )
    @settings(deadline=None, max_examples=50)
    def test_prefix_stable_under_growing_shard_counts(self, base, n, extra):
        """Resharding a federation from n to n+extra shards must never
        reseed shards 0..n-1: their seeds are a stable prefix."""
        small = spawn_seeds(base, n)
        large = spawn_seeds(base, n + extra)
        assert large[:n] == small


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------

class TestRunSpec:
    def test_pickles(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler="tetris",
                       knobs={"fairness_knob": 0.5}, config=config)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.scheduler == "tetris"
        assert clone.knobs == {"fairness_knob": 0.5}
        assert len(clone.trace) == len(small_trace)

    def test_execute_matches_run_trace(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler="tetris", config=config)
        direct = run_trace(small_trace, TetrisScheduler(), config)
        via_spec = execute(spec)
        assert via_spec.completion_by_name() == direct.completion_by_name()
        assert via_spec.summary() == direct.summary()

    def test_factory_scheduler(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler=SlotFairScheduler,
                       config=config)
        assert isinstance(spec.build_scheduler(), SlotFairScheduler)
        assert spec.name == "SlotFairScheduler"

    def test_knobs_require_named_scheduler(self, small_trace, config):
        with pytest.raises(ValueError):
            RunSpec(trace=small_trace, scheduler=TetrisScheduler,
                    knobs={"fairness_knob": 0.5}, config=config)

    def test_knobs_reach_the_scheduler(self):
        scheduler = build_scheduler("tetris", {"fairness_knob": 0.75})
        assert scheduler.config.fairness_knob == 0.75

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_scheduler("nope")

    def test_with_seed_and_siblings(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler="fifo", config=config)
        siblings = spec.siblings(3, base_seed=9)
        assert [s.config.seed for s in siblings] == list(spawn_seeds(9, 3))
        # the original spec's config is untouched
        assert spec.config.seed == config.seed


# ---------------------------------------------------------------------------
# backends: generic map behavior
# ---------------------------------------------------------------------------

class TestBackendMap:
    def test_serial_order_and_values(self):
        outs = SerialBackend().map(_double, [3, 1, 2])
        assert [o.value for o in outs] == [6, 2, 4]
        assert [o.index for o in outs] == [0, 1, 2]

    def test_process_order_matches_items(self):
        outs = ProcessPoolBackend(workers=3).map(_double, list(range(7)))
        assert [o.value for o in outs] == [i * 2 for i in range(7)]

    def test_progress_callback(self):
        seen = []
        SerialBackend().map(
            _double, [1, 2],
            progress=lambda done, total, o: seen.append((done, total, o.ok)),
        )
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_dead_worker_retry_is_bounded(self):
        backend = ProcessPoolBackend(workers=2, timeout=30.0, retries=2)
        outs = backend.map(_crash_hard, ["x"])
        assert not outs[0].ok
        assert outs[0].attempts == 3  # 1 try + 2 bounded retries
        assert "exited" in outs[0].error

    def test_resolve_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        assert get_backend().workers == 3
        monkeypatch.setenv("REPRO_WORKERS", "zzz")
        with pytest.raises(ValueError):
            resolve_workers()
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers() == 1
        assert get_backend().name == "serial"
        assert resolve_workers(4) == 4

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, timeout=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, retries=-1)


# ---------------------------------------------------------------------------
# pool persistence: workers are reused across fan-outs
# ---------------------------------------------------------------------------

class TestPersistentPool:
    def test_worker_pids_stable_across_fanouts(self):
        with ProcessPoolBackend(workers=2, sticky=True) as backend:
            first = [o.value for o in backend.map(_getpid, range(4))]
            second = [o.value for o in backend.map(_getpid, range(4))]
        # sticky routing pins item i to slot i % workers, so the same
        # item index must land on the same (still-alive) process in two
        # consecutive fan-outs — i.e. the pool was not rebuilt per call
        assert first == second
        assert len(set(first)) == 2

    def test_nonsticky_pool_is_also_persistent(self):
        with ProcessPoolBackend(workers=2) as backend:
            first = {o.value for o in backend.map(_getpid, range(6))}
            pids = {pid for pid in backend.worker_pids() if pid is not None}
            second = {o.value for o in backend.map(_getpid, range(6))}
        assert first <= pids
        assert second <= pids

    def test_crashed_worker_is_replaced_in_place(self):
        with ProcessPoolBackend(workers=2, retries=1, sticky=True) as backend:
            before = backend.map(_getpid, range(2))
            # item 0 crashes its slot's worker once; slot 1 is untouched
            outs = backend.map(_crash_on_zero, range(2))
            assert not outs[0].ok and outs[0].attempts == 2
            assert outs[1].ok and outs[1].value == before[1].value
            # the replaced slot serves later fan-outs with a fresh process
            after = backend.map(_getpid, range(2))
            assert after[0].ok and after[0].value != before[0].value
            assert after[1].value == before[1].value

    def test_closed_backend_rejects_map(self):
        backend = ProcessPoolBackend(workers=2)
        backend.map(_double, [1])
        backend.close()
        assert backend.worker_pids() == [None, None]
        with pytest.raises(RuntimeError, match="closed"):
            backend.map(_double, [1])


# ---------------------------------------------------------------------------
# the determinism invariant: serial == parallel, bit for bit
# ---------------------------------------------------------------------------

class TestDeterminism:
    @pytest.fixture(scope="class")
    def specs(self, small_trace, config):
        return [
            RunSpec(trace=small_trace, scheduler=name, config=config)
            for name in GRID_SCHEDULERS
        ]

    def test_grid_bit_identical_across_backends(self, specs):
        serial = run_specs(specs, SerialBackend())
        parallel = run_specs(specs, ProcessPoolBackend(workers=4))
        assert [o.label for o in serial] == list(GRID_SCHEDULERS)
        assert [o.label for o in parallel] == list(GRID_SCHEDULERS)
        for s, p in zip(serial, parallel):
            assert s.ok and p.ok
            # per-job completion times and every summary metric match
            assert (s.result.completion_by_name()
                    == p.result.completion_by_name())
            assert s.result.summary() == p.result.summary()

    def test_run_comparison_workers_parity(self, small_trace, config):
        factories = {
            "tetris": TetrisScheduler, "slot-fair": SlotFairScheduler,
        }
        serial = run_comparison(small_trace, factories, config)
        parallel = run_comparison(small_trace, factories, config, workers=2)
        assert list(serial) == list(parallel) == ["tetris", "slot-fair"]
        for name in serial:
            assert (serial[name].completion_by_name()
                    == parallel[name].completion_by_name())
            assert serial[name].summary() == parallel[name].summary()

    def test_replicate_workers_parity(self):
        def make_trace(seed):
            return generate_workload_suite(
                WorkloadSuiteConfig(num_jobs=3, task_scale=0.02,
                                    arrival_horizon=80, seed=seed)
            )

        factories = {"tetris": TetrisScheduler}
        serial = replicate(make_trace, factories, num_seeds=2,
                           base_seed=5, num_machines=5)
        parallel = replicate(make_trace, factories, num_seeds=2,
                             base_seed=5, num_machines=5, workers=2)
        assert serial.seeds == parallel.seeds == spawn_seeds(5, 2)
        assert (serial.mean_jct["tetris"].values
                == parallel.mean_jct["tetris"].values)


# ---------------------------------------------------------------------------
# failure paths
# ---------------------------------------------------------------------------

class TestFailureIsolation:
    @pytest.fixture(scope="class")
    def mixed_specs(self, small_trace, config):
        return [
            RunSpec(trace=small_trace, scheduler="fifo", config=config),
            RunSpec(trace=small_trace, scheduler=ExplodingScheduler,
                    config=config, label="boom"),
            RunSpec(trace=small_trace, scheduler="tetris", config=config),
        ]

    @pytest.mark.parametrize("backend_factory", [
        SerialBackend, lambda: ProcessPoolBackend(workers=2)],
        ids=["serial", "process"])
    def test_failure_is_isolated(self, mixed_specs, backend_factory):
        outcomes = run_specs(mixed_specs, backend_factory())
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert failed.label == "boom"
        assert "injected failure" in failed.error
        assert "RuntimeError" in failed.traceback
        # the healthy cells completed normally
        assert outcomes[0].result.makespan > 0
        assert outcomes[2].result.makespan > 0

    def test_raise_on_failure_names_the_row(self, mixed_specs):
        outcomes = run_specs(mixed_specs, SerialBackend())
        with pytest.raises(ExecutionError, match="boom"):
            raise_on_failure(outcomes)

    def test_run_comparison_reports_failures(self, small_trace, config):
        with pytest.raises(ExecutionError, match="bad"):
            run_comparison(
                small_trace,
                {"ok": FifoScheduler, "bad": ExplodingScheduler},
                config,
            )

    def test_timeout_kills_hung_worker(self, small_trace, config):
        specs = [
            RunSpec(trace=small_trace, scheduler="fifo", config=config),
            RunSpec(trace=small_trace, scheduler=HangingScheduler,
                    config=config, label="hung"),
        ]
        backend = ProcessPoolBackend(workers=2, timeout=2.0, retries=0)
        start = time.monotonic()
        outcomes = run_specs(specs, backend)
        elapsed = time.monotonic() - start
        assert elapsed < 60  # nowhere near the 300s sleep
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "timed out" in outcomes[1].error
        assert outcomes[1].attempts == 1

    def test_timeout_on_final_attempt_reports_timeout(self):
        # a hang that times out on the last permitted attempt must
        # surface as a timeout, not as a silent worker death, and its
        # wall_seconds must be the attempt's real elapsed time
        backend = ProcessPoolBackend(workers=1, timeout=0.5, retries=1)
        start = time.monotonic()
        outcome = backend.map(_sleep_long, ["x"])[0]
        elapsed = time.monotonic() - start
        assert not outcome.ok
        assert "timed out" in outcome.error
        assert outcome.attempts == 2  # 1 try + 1 retry, both expired
        assert 0.5 <= outcome.wall_seconds <= elapsed

    def test_silent_death_reports_real_elapsed(self):
        # with no timeout configured, the old accounting reported
        # wall_seconds = (self.timeout or 0.0) = 0.0 for silent deaths
        backend = ProcessPoolBackend(workers=1, timeout=None, retries=0)
        outcome = backend.map(_crash_hard, ["x"])[0]
        assert not outcome.ok
        assert "exited" in outcome.error
        assert outcome.wall_seconds > 0.0

    def test_deterministic_exceptions_not_retried(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler=ExplodingScheduler,
                       config=config)
        backend = ProcessPoolBackend(workers=2, retries=3)
        outcome = run_specs([spec], backend)[0]
        assert not outcome.ok
        assert outcome.attempts == 1


# ---------------------------------------------------------------------------
# observability across the process boundary
# ---------------------------------------------------------------------------

class TestCollectProfile:
    def test_profiler_and_registry_come_back(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler="tetris", config=config,
                       collect_profile=True)
        serial = run_specs([spec], SerialBackend())[0]
        parallel = run_specs([spec], ProcessPoolBackend(workers=2))[0]
        for outcome in (serial, parallel):
            assert outcome.profiler is not None
            assert outcome.profiler.stats("engine.scheduler_round").count > 0
            assert outcome.registry is not None
            assert outcome.registry.names()
        # counters are bit-identical too (same run, either side of a fork)
        s = {k: v["values"] for k, v in serial.registry.snapshot().items()
             if v["type"] == "counter"}
        p = {k: v["values"] for k, v in parallel.registry.snapshot().items()
             if v["type"] == "counter"}
        assert s == p

    def test_profilers_merge_across_runs(self, small_trace, config):
        spec = RunSpec(trace=small_trace, scheduler="tetris", config=config,
                       collect_profile=True)
        outcomes = run_specs([spec, spec], SerialBackend())
        merged = outcomes[0].profiler.merge(outcomes[1].profiler)
        label = "engine.scheduler_round"
        assert merged.stats(label).count == 2 * run_specs(
            [spec], SerialBackend()
        )[0].profiler.stats(label).count
