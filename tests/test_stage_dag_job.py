"""Stage, StageDag, and Job structural tests."""

import pytest

from repro.resources import DEFAULT_MODEL
from repro.workload.dag import StageDag
from repro.workload.job import Job, JobState
from repro.workload.stage import Stage
from repro.workload.task import TaskState

from conftest import make_simple_job, make_task, make_two_stage_job


def finish(task, machine=0, t0=0.0, t1=1.0):
    task.mark_running(machine, t0)
    task.mark_finished(t1)


class TestStage:
    def test_root_stage_tasks_runnable(self):
        stage = Stage("s", [make_task(), make_task()])
        assert all(t.state is TaskState.RUNNABLE for t in stage.tasks)

    def test_child_stage_tasks_blocked(self):
        parent = Stage("p", [make_task()])
        child = Stage("c", [make_task()], parents=[parent])
        assert all(t.state is TaskState.BLOCKED for t in child.tasks)
        assert child in parent.children

    def test_finished_fraction(self):
        stage = Stage("s", [make_task() for _ in range(4)])
        assert stage.finished_fraction == 0.0
        finish(stage.tasks[0])
        assert stage.finished_fraction == 0.25
        assert stage.num_finished == 1

    def test_release_if_ready(self):
        parent = Stage("p", [make_task()])
        child = Stage("c", [make_task()], parents=[parent])
        assert not child.release_if_ready()
        finish(parent.tasks[0])
        assert child.release_if_ready()
        assert child.tasks[0].state is TaskState.RUNNABLE

    def test_first_unfinished_tasks(self):
        stage = Stage("s", [make_task() for _ in range(3)])
        finish(stage.tasks[0])
        remaining = stage.first_unfinished_tasks(5)
        assert len(remaining) == 2

    def test_empty_stage_is_finished(self):
        assert Stage("s", []).is_finished()
        assert Stage("s", []).finished_fraction == 1.0


class TestStageDag:
    def test_toposort_chain(self):
        a = Stage("a", [make_task()])
        b = Stage("b", [make_task()], parents=[a])
        c = Stage("c", [make_task()], parents=[b])
        dag = StageDag([c, a, b])
        assert [s.name for s in dag.topological_order()] == ["a", "b", "c"]

    def test_roots_and_leaves(self):
        a = Stage("a", [make_task()])
        b = Stage("b", [make_task()], parents=[a])
        dag = StageDag([a, b])
        assert dag.roots() == [a]
        assert dag.leaves() == [b]

    def test_depth(self):
        a = Stage("a", [make_task()])
        b = Stage("b", [make_task()], parents=[a])
        c = Stage("c", [make_task()], parents=[a])
        d = Stage("d", [make_task()], parents=[b, c])
        assert StageDag([a, b, c, d]).depth() == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StageDag([Stage("x", []), Stage("x", [])])

    def test_cycle_rejected(self):
        a = Stage("a", [make_task()])
        b = Stage("b", [make_task()], parents=[a])
        a.parents.append(b)  # force a cycle
        b.children.append(a)
        with pytest.raises(ValueError):
            StageDag([a, b])

    def test_external_parent_rejected(self):
        outside = Stage("out", [make_task()])
        inside = Stage("in", [make_task()], parents=[outside])
        with pytest.raises(ValueError):
            StageDag([inside])


class TestJob:
    def test_arrival(self):
        job = make_simple_job()
        assert job.state is JobState.WAITING
        job.arrive()
        assert job.state is JobState.ACTIVE

    def test_barrier_release_on_task_finish(self):
        job = make_two_stage_job(num_map=2, num_reduce=1)
        job.arrive()
        maps = job.dag.roots()[0].tasks
        finish(maps[0])
        assert job.note_task_finished() == []
        finish(maps[1])
        released = job.note_task_finished()
        assert len(released) == 1
        assert released[0].name == "reduce"

    def test_job_finishes_when_all_stages_done(self):
        job = make_simple_job(num_tasks=2)
        job.arrive()
        for task in job.all_tasks():
            finish(task)
        job.note_task_finished()
        assert job.is_finished
        job.mark_finished(42.0)
        assert job.finish_time == 42.0

    def test_completion_time(self):
        job = make_simple_job(arrival_time=10.0)
        assert job.completion_time is None
        job.mark_finished(30.0)
        assert job.completion_time == pytest.approx(20.0)

    def test_num_tasks(self):
        assert make_two_stage_job(num_map=4, num_reduce=2).num_tasks == 6

    def test_runnable_tasks_respect_barrier(self):
        job = make_two_stage_job(num_map=2, num_reduce=3)
        assert len(job.runnable_tasks()) == 2

    def test_remaining_work_score_decreases(self):
        job = make_simple_job(num_tasks=3, cpu=2, cpu_work=20)
        cap = DEFAULT_MODEL.vector(cpu=16, mem=48, diskr=200, diskw=200,
                                   netin=125, netout=125)
        before = job.remaining_work_score(cap)
        finish(job.all_tasks()[0])
        after = job.remaining_work_score(cap)
        assert 0 < after < before

    def test_barrier_tasks_requires_threshold(self):
        job = make_simple_job(num_tasks=4)
        assert job.barrier_tasks(0.5) == []
        for task in job.all_tasks()[:2]:
            finish(task)
        eligible = job.barrier_tasks(0.5)
        assert len(eligible) == 2

    def test_barrier_tasks_validates_knob(self):
        with pytest.raises(ValueError):
            make_simple_job().barrier_tasks(1.0)

    def test_barrier_tasks_skips_unreleased_stages(self):
        job = make_two_stage_job(num_map=2, num_reduce=2)
        # reduce stage not released: never eligible, map stage at 50%
        finish(job.dag.roots()[0].tasks[0])
        eligible = job.barrier_tasks(0.5)
        assert all(t.stage.name == "map" for t in eligible)
