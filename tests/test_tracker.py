"""Resource tracker tests (Sections 4.1 and 4.3)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.resources import DEFAULT_MODEL
from repro.sim.fluid import FlowSpec, FlowTable

from conftest import make_task


@pytest.fixture
def cluster():
    return Cluster(2, machines_per_rack=2)


@pytest.fixture
def flows(cluster):
    return FlowTable(
        cluster.model, [m.capacity.data for m in cluster.machines]
    )


class TestReports:
    def test_observed_usage_reflects_flows(self, cluster, flows):
        flows.add_flow(
            FlowSpec(work=1000, nominal_rate=80, slots=((0, "diskw"),))
        )
        tracker = ResourceTracker(cluster)
        tracker.report(10.0, flows)
        assert cluster.machine(0).observed_usage.get("diskw") == pytest.approx(80)
        assert cluster.machine(1).observed_usage.get("diskw") == 0.0

    def test_rigid_usage_from_allocation(self, cluster, flows):
        cluster.machine(0).place(make_task(mem=10))
        tracker = ResourceTracker(cluster)
        tracker.report(0.0, flows)
        assert cluster.machine(0).observed_usage.get("mem") == 10


class TestRampAllowance:
    def test_allowance_decays_linearly(self, cluster):
        tracker = ResourceTracker(
            cluster, TrackerConfig(ramp_seconds=10.0)
        )
        task = make_task(cpu=4)
        booked = DEFAULT_MODEL.vector(cpu=4)
        tracker.note_placement(task, 0, booked, time=0.0)
        machine = cluster.machine(0)
        assert tracker.ramp_allowance(machine, 0.0).get("cpu") == pytest.approx(4)
        assert tracker.ramp_allowance(machine, 5.0).get("cpu") == pytest.approx(2)
        assert tracker.ramp_allowance(machine, 10.0).get("cpu") == 0.0

    def test_completion_clears_allowance(self, cluster):
        tracker = ResourceTracker(cluster)
        task = make_task(cpu=4)
        tracker.note_placement(task, 0, DEFAULT_MODEL.vector(cpu=4), 0.0)
        tracker.note_completion(task)
        assert tracker.ramp_allowance(cluster.machine(0), 0.0).is_zero()

    def test_allowance_scoped_to_machine(self, cluster):
        tracker = ResourceTracker(cluster)
        tracker.note_placement(make_task(), 1, DEFAULT_MODEL.vector(cpu=4), 0.0)
        assert tracker.ramp_allowance(cluster.machine(0), 0.0).is_zero()


class TestAvailability:
    def test_overestimate_reclaimed(self, cluster, flows):
        """Booked 8 cores but the task only burns 2: after the ramp
        window the tracker reclaims the idle 6 (Section 4.1 — unused
        resources are reported and re-allocated to new tasks)."""
        machine = cluster.machine(0)
        task = make_task(cpu=8)
        machine.place(task, DEFAULT_MODEL.vector(cpu=8))
        flows.add_flow(
            FlowSpec(work=1000, nominal_rate=2, slots=((0, "cpu"),))
        )
        tracker = ResourceTracker(cluster, TrackerConfig(ramp_seconds=0.0))
        tracker.report(100.0, flows)
        avail = tracker.available(machine, time=100.0)
        assert avail.get("cpu") == pytest.approx(16 - 2)

    def test_booked_memory_never_reclaimed(self, cluster, flows):
        """Peak memory stays reserved for the task's lifetime — giving a
        task less than its peak risks thrashing (Section 3.1)."""
        machine = cluster.machine(0)
        task = make_task(mem=10)
        machine.place(task, DEFAULT_MODEL.vector(mem=10))
        tracker = ResourceTracker(cluster, TrackerConfig(ramp_seconds=0.0))
        tracker.report(100.0, flows)
        # observed memory is the allocation itself; available excludes it
        avail = tracker.available(machine, time=100.0)
        assert avail.get("mem") == pytest.approx(48 - 10)

    def test_unbooked_activity_shrinks_availability(self, cluster, flows):
        """Ingestion consumes disk the scheduler never booked; the
        tracker makes the scheduler see it (Figure 6 mechanism)."""
        flows.add_flow(
            FlowSpec(work=100000, nominal_rate=150, slots=((0, "diskw"),))
        )
        tracker = ResourceTracker(cluster, TrackerConfig(ramp_seconds=0.0))
        tracker.report(5.0, flows)
        avail = tracker.available(cluster.machine(0), time=5.0)
        assert avail.get("diskw") == pytest.approx(200 - 150)

    def test_availability_never_negative(self, cluster, flows):
        flows.add_flow(
            FlowSpec(work=1e6, nominal_rate=500, slots=((0, "diskw"),))
        )
        flows.add_flow(
            FlowSpec(work=1e6, nominal_rate=500, slots=((0, "diskw"),))
        )
        tracker = ResourceTracker(cluster, TrackerConfig(ramp_seconds=0.0))
        tracker.report(1.0, flows)
        avail = tracker.available(cluster.machine(0), time=1.0)
        assert avail.is_nonnegative()

    def test_ramp_blocks_premature_reclaim(self, cluster, flows):
        machine = cluster.machine(0)
        task = make_task(diskw=100)
        machine.place(task, DEFAULT_MODEL.vector(diskw=100))
        tracker = ResourceTracker(cluster, TrackerConfig(ramp_seconds=10.0))
        tracker.note_placement(task, 0, DEFAULT_MODEL.vector(diskw=100), 0.0)
        tracker.report(1.0, flows)  # task has no flows yet: observed 0
        avail = tracker.available(machine, time=1.0)
        # the decayed allowance (90% of the booking at age 1s of 10s)
        # still protects the fresh task's booking from being reclaimed
        assert avail.get("diskw") == pytest.approx(200 - 90)
