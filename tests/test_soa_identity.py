"""The structure-of-arrays core's identity bar.

Property tests pinning the tentpole's central invariant: every kernel
backend (``scalar`` / ``numpy`` / ``numba`` when importable) and every
SoA fast path produces *bit-identical* decisions to the pure-python
scalar oracle —

- kernel primitives (fit mask, alignment dot, score combine) agree
  elementwise with the scalar reference on arbitrary inputs;
- end-to-end placements and decision-event streams match across
  backends on generated workloads, with and without a tracker;
- the sparse fluid rate updates equal the dense ``reference_rates``
  oracle exactly;
- ``TaskTable`` recycles slots, so the arrays track the live population;
- the batched ``fill_packed`` view write is coherent with the
  per-slot ``set_slot`` path (placements identical either way).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.kernels import DEFAULT_BACKEND, available_backends, get_backend
from repro.obs.trace import DecisionTrace
from repro.resources import DEFAULT_MODEL, EPSILON
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.sim.fluid import FluidConfig, FlowSpec, FlowTable
from repro.workload.table import TaskTable
from repro.workload.task import Task, TaskWork
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite

from conftest import make_simple_job

BACKENDS = available_backends()
HAS_NUMBA = "numba" in BACKENDS

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def _workload(seed, num_jobs=6, horizon=120.0):
    return generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs,
            task_scale=0.04,
            arrival_horizon=horizon,
            seed=seed,
        )
    )


def _run(trace, config, seed=0, num_machines=4, use_tracker=False,
         decision_trace=None):
    from repro.estimation.tracker import ResourceTracker

    cluster = Cluster(num_machines, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    tracker = ResourceTracker(cluster) if use_tracker else None
    engine = Engine(
        cluster,
        TetrisScheduler(config),
        jobs,
        tracker=tracker,
        config=EngineConfig(seed=seed),
        decision_trace=decision_trace,
    )
    engine.run()
    return [
        (task.job.name, task.stage.name, task.index, machine_id, time)
        for (task, machine_id, time, _booked) in engine.placement_log
    ]


# -- kernel primitives ------------------------------------------------------

class TestKernelPrimitiveIdentity:
    """Every registered backend computes the three hot kernels with the
    exact float semantics of the scalar reference."""

    @given(
        st.integers(1, 7).flatmap(
            lambda d: st.tuples(
                st.lists(
                    st.lists(finite, min_size=d, max_size=d),
                    min_size=1,
                    max_size=24,
                ),
                st.lists(finite, min_size=d, max_size=d),
            )
        )
    )
    @settings(deadline=None)
    def test_fit_and_dot_bitwise(self, data):
        rows_list, vec_list = data
        rows = np.array(rows_list, dtype=float)
        vec = np.array(vec_list, dtype=float)
        oracle = get_backend("scalar")
        want_fit = oracle.fit_rows(rows, vec, EPSILON)
        want_dot = oracle.dot_rows(rows, vec)
        for name in BACKENDS:
            backend = get_backend(name)
            got_fit = backend.fit_rows(rows, vec, EPSILON)
            got_dot = backend.dot_rows(rows, vec)
            assert np.array_equal(got_fit, want_fit), name
            # bitwise: same products reduced in the same order
            assert np.array_equal(got_dot, want_dot), name

    @given(
        st.lists(finite, min_size=1, max_size=24),
        st.lists(finite, min_size=1, max_size=24),
        finite,
        finite,
    )
    @settings(deadline=None)
    def test_combine_scores_bitwise(self, align, remaining, w, srtf_w):
        n = min(len(align), len(remaining))
        a = np.array(align[:n])
        r = np.array(remaining[:n])
        oracle = get_backend("scalar")
        want = oracle.combine_scores(a, r, w, srtf_w)
        for name in BACKENDS:
            got = get_backend(name).combine_scores(a, r, w, srtf_w)
            assert np.array_equal(got, want), name


# -- backend registry -------------------------------------------------------

class TestBackendRegistry:
    def test_default_is_numpy(self):
        assert DEFAULT_BACKEND == "numpy"
        assert get_backend(None).name == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "scalar")
        assert get_backend(None).name == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_scalar_is_not_vectorized(self):
        assert not get_backend("scalar").vectorized
        assert get_backend("numpy").vectorized

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed here")
    def test_numba_absent_raises_cleanly(self):
        """Requesting numba without the package is a clean ValueError
        naming the usable alternatives — not an ImportError mid-round."""
        with pytest.raises(ValueError, match="numba"):
            get_backend("numba")
        assert available_backends() == ["scalar", "numpy"]

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_numba_backend_resolves(self):
        assert get_backend("numba").name == "numba"


# -- end-to-end placement / trace identity ---------------------------------

class TestBackendPlacementIdentity:
    """Scheduling through any backend lands every task on the same
    machine at the same instant as the scalar object-path oracle."""

    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=5)
    def test_placements_match_oracle(self, seed):
        trace = _workload(seed=seed % 997)
        oracle = _run(trace, TetrisConfig(vectorized=False), seed=seed % 31)
        assert len(oracle) > 0
        for name in BACKENDS:
            if name == "scalar":
                continue
            got = _run(
                trace,
                TetrisConfig(vectorized=True, backend=name),
                seed=seed % 31,
            )
            assert got == oracle, name

    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=3)
    def test_placements_match_with_tracker(self, seed):
        trace = _workload(seed=seed % 991)
        oracle = _run(
            trace, TetrisConfig(vectorized=False), use_tracker=True
        )
        assert len(oracle) > 0
        for name in BACKENDS:
            if name == "scalar":
                continue
            got = _run(
                trace,
                TetrisConfig(vectorized=True, backend=name),
                use_tracker=True,
            )
            assert got == oracle, name

    @pytest.mark.parametrize(
        "name", [n for n in BACKENDS if n != "scalar"]
    )
    def test_decision_stream_matches_oracle(self, name):
        """With a trace attached, the backend emits the *same decision
        events* — every candidate considered, every score, every
        decline — as the scalar reference."""
        trace = _workload(seed=23)
        with DecisionTrace() as ref_sink:
            _run(trace, TetrisConfig(vectorized=False),
                 decision_trace=ref_sink)
            want = ref_sink.events()
        with DecisionTrace() as got_sink:
            _run(trace, TetrisConfig(vectorized=True, backend=name),
                 decision_trace=got_sink)
            got = got_sink.events()
        assert len(want) > 0
        assert got == want

    def test_scalar_backend_runs_reference_loop(self):
        cluster = Cluster(2, seed=0)
        sched = TetrisScheduler(TetrisConfig(backend="scalar"))
        sched.bind(cluster)
        assert not sched._use_vectorized


# -- fluid rates ------------------------------------------------------------

class TestFluidRateIdentity:
    def _table(self, num_machines=3):
        caps = [
            DEFAULT_MODEL.vector(
                cpu=16, mem=48, diskr=200, diskw=200, netin=125, netout=125
            ).data
            for _ in range(num_machines)
        ]
        return FlowTable(
            DEFAULT_MODEL, caps, FluidConfig(contention_sigma=0.25)
        )

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
                st.integers(0, 2),
                st.sampled_from(["diskr", "diskw", "netin", "netout"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(deadline=None, max_examples=30)
    def test_sparse_rates_equal_reference_bitwise(self, specs):
        """After any mix of adds, removes and advances, the sparse
        per-flow rates equal the dense oracle recomputation exactly."""
        table = self._table()
        live = []
        for i, (work, rate, machine, dim) in enumerate(specs):
            fid = table.add_flow(
                FlowSpec(
                    work=work,
                    nominal_rate=rate,
                    slots=((machine, dim),),
                )
            )
            live.append(fid)
            if i % 3 == 2 and live:
                table.remove_flow(live.pop(0))
            if i % 4 == 3:
                dt = table.time_to_next_completion()
                if dt != float("inf"):
                    done = set(table.advance(dt))
                    live = [f for f in live if f not in done]
            table._recompute_rates()  # flush the dirty-slot set
            oracle = table.reference_rates()
            for fid in live:
                assert table._rate[fid] == oracle[fid]


# -- task table slot reuse --------------------------------------------------

class TestTaskTableSlotReuse:
    def _task(self):
        return Task(DEFAULT_MODEL.vector(cpu=1, mem=1), TaskWork(10))

    def test_released_slot_is_recycled(self):
        table = TaskTable(DEFAULT_MODEL, capacity=2)
        a, b = self._task(), self._task()
        slot_a = table.register(a)
        slot_b = table.register(b)
        assert {slot_a, slot_b} == {0, 1}
        table.release(a)
        assert table.num_live == 1
        assert table.task_at(slot_a) is None
        c = self._task()
        assert table.register(c) == slot_a  # freed slot comes back first
        assert table.task_at(slot_a) is c
        assert table.demands[slot_a] == pytest.approx(c.demands.data)
        assert table.num_live == 2
        assert table.capacity == 2  # no growth while slots recycle

    def test_register_is_idempotent(self):
        table = TaskTable(DEFAULT_MODEL, capacity=2)
        task = self._task()
        assert table.register(task) == table.register(task)
        assert table.num_live == 1

    def test_growth_preserves_rows(self):
        table = TaskTable(DEFAULT_MODEL, capacity=1)
        tasks = [self._task() for _ in range(5)]
        slots = [table.register(t) for t in tasks]
        assert len(set(slots)) == 5
        for task, slot in zip(tasks, slots):
            assert table.task_at(slot) is task
            assert np.array_equal(table.demands[slot], task.demands.data)

    def test_engine_recycles_slots_across_waves(self):
        """Streamed jobs with disjoint lifetimes share slots: the table
        stays sized to the live population, not the stream total."""
        cluster = Cluster(4, machines_per_rack=2, seed=1)
        first = make_simple_job(num_tasks=8, cpu_work=4.0,
                                arrival_time=0.0)
        engine = Engine(cluster, TetrisScheduler(), [first],
                        config=EngineConfig(seed=1))
        engine.open_stream()
        jobs = [first]
        for i in range(1, 12):
            # drain wave i-1 completely before committing wave i, so its
            # released slots are free for reuse at registration time
            engine.run_until(100.0 * i - 50.0)
            job = make_simple_job(num_tasks=8, cpu_work=4.0,
                                  arrival_time=100.0 * i)
            engine.add_job(job)
            jobs.append(job)
        engine.close_stream()
        while not engine._finished():
            engine.run_until(float("inf"))
        engine.finalize()
        assert all(j.is_finished for j in jobs)
        assert engine.task_table.num_live == 0  # all released
        # 96 tasks flowed through, but only one wave was ever live
        assert engine.task_table.capacity == 64  # initial, never grown


# -- fill_packed coherence --------------------------------------------------

class TestFillPackedCoherence:
    """The batched two-assignment view write and the per-slot write are
    interchangeable: forcing either path end-to-end yields bit-identical
    placements (the batch threshold is a pure perf knob)."""

    def _placements(self, threshold):
        import repro.schedulers.candidates as cand

        trace = _workload(seed=37, num_jobs=10)
        old = cand._BATCH_THRESHOLD
        cand._BATCH_THRESHOLD = threshold
        try:
            return _run(trace, TetrisConfig(vectorized=True), seed=2,
                        num_machines=6)
        finally:
            cand._BATCH_THRESHOLD = old

    def test_batched_and_per_slot_paths_identical(self):
        always_packed = self._placements(0)       # fill_packed everywhere
        never_packed = self._placements(10**9)    # set_slot everywhere
        assert len(always_packed) > 0
        assert always_packed == never_packed

    def test_fill_packed_writes_match_set_slot_writes(self):
        """Direct array coherence: intercept every built view and rebuild
        it through the opposite path; the slot arrays must agree
        row-for-row."""
        import repro.schedulers.candidates as cand

        checked = {"views": 0, "batched": 0}
        orig = cand.CandidateIndex.build_view

        def checking(self, table, stage_index, machine_id, num_dims,
                     shared=False):
            view = orig(self, table, stage_index, machine_id, num_dims,
                        shared)
            rows = view.active_rows()
            if rows.size == 0:
                return view
            checked["views"] += 1
            if rows.size > cand._BATCH_THRESHOLD:
                checked["batched"] += 1
            # rebuild the active rows through the scalar pack lookup
            for i in rows:
                task = view.tasks[i]
                booked, norm, remote = self.pack(task, machine_id)
                assert np.array_equal(view.booked_mat[i], booked.data)
                assert np.array_equal(view.norm_mat[i], norm)
                assert bool(view.remote[i]) == bool(remote)
            return view

        cand.CandidateIndex.build_view = checking
        try:
            trace = _workload(seed=41, num_jobs=10)
            placements = _run(trace, TetrisConfig(vectorized=True),
                              seed=3, num_machines=6)
        finally:
            cand.CandidateIndex.build_view = orig
        assert len(placements) > 0
        assert checked["views"] > 0
