"""Cluster aggregate tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL, FB_MACHINE_CAPACITY

from conftest import make_task


class TestCluster:
    def test_default_capacity_is_facebook_profile(self):
        cluster = Cluster(3)
        assert cluster.machine_capacity() == FB_MACHINE_CAPACITY

    def test_total_capacity(self):
        cluster = Cluster(4)
        assert cluster.total_capacity().get("cpu") == 4 * 16

    def test_total_allocated(self):
        cluster = Cluster(2)
        cluster.machine(0).place(make_task(cpu=2, mem=4))
        cluster.machine(1).place(make_task(cpu=1, mem=1))
        total = cluster.total_allocated()
        assert total.get("cpu") == 3
        assert total.get("mem") == 5

    def test_total_running_tasks(self):
        cluster = Cluster(2)
        cluster.machine(0).place(make_task())
        assert cluster.total_running_tasks() == 1

    def test_machines_with_free(self):
        cluster = Cluster(3)
        big = DEFAULT_MODEL.vector(cpu=16, mem=48)
        assert len(cluster.machines_with_free(big)) == 3
        cluster.machine(1).place(make_task(cpu=1))
        assert len(cluster.machines_with_free(big)) == 2

    def test_custom_capacity(self):
        cap = DEFAULT_MODEL.vector(cpu=4, mem=8, diskr=50, diskw=50,
                                   netin=10, netout=10)
        cluster = Cluster(2, machine_capacity=cap)
        assert cluster.machine_capacity() == cap

    def test_topology_wiring(self):
        cluster = Cluster(32, machines_per_rack=8)
        assert cluster.topology.num_racks == 4

    def test_blockstore_shares_topology(self):
        cluster = Cluster(8, machines_per_rack=4)
        block = cluster.blockstore.add_block(64.0)
        assert all(0 <= m < 8 for m in block.replicas)
