"""Wastage-metric tests (Sections 1 / 2.1: stretched tasks hold memory)."""

import pytest

from repro.analysis.wastage import (
    excess_holding,
    holding_report,
    resource_holding_integral,
)
from repro.cluster.cluster import Cluster
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from repro.workload.stage import Stage

from conftest import make_task


def disk_contention_jobs(n=4):
    """Tasks that saturate one disk each: co-scheduling them stretches
    everyone while their memory stays booked."""
    tasks = [
        make_task(cpu=1, mem=8, diskw=200, write_mb=2000, cpu_work=1)
        for _ in range(n)
    ]
    return [Job([Stage("w", tasks)])]


def run(scheduler, jobs, machines):
    cluster = Cluster(machines, machines_per_rack=2, seed=0)
    engine = Engine(cluster, scheduler, jobs)
    engine.run()
    return engine


class TestHoldingIntegrals:
    def test_holding_integral_matches_hand_math(self):
        jobs = disk_contention_jobs(1)
        engine = run(TetrisScheduler(), jobs, machines=1)
        task = jobs[0].all_tasks()[0]
        held = resource_holding_integral(engine.placement_log, "mem")
        assert held == pytest.approx(8.0 * task.duration)

    def test_uncontended_run_has_no_excess(self):
        jobs = disk_contention_jobs(2)
        engine = run(TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
                     jobs, machines=2)
        assert excess_holding(engine.placement_log, "mem") == pytest.approx(
            0.0, abs=1e-6
        )

    def test_over_allocation_wastes_memory_seconds(self):
        """FIFO stacks both disk writers on one machine: each stretches
        past nominal while holding 8 GB."""
        jobs = disk_contention_jobs(2)
        engine = run(FifoScheduler(), jobs, machines=1)
        excess = excess_holding(engine.placement_log, "mem")
        # nominal 10 s; proportional sharing + penalty stretches well
        # beyond 2x, so > 8 GB x 10 s of pure waste per task
        assert excess > 8.0 * 10.0

    def test_report_structure(self):
        jobs = disk_contention_jobs(2)
        engine = run(FifoScheduler(), jobs, machines=1)
        report = holding_report(engine)
        assert set(report) == set(engine.cluster.model.names)
        assert report["mem"]["excess_fraction"] > 0.3
        assert report["mem"]["held"] > report["mem"]["excess"]

    def test_tetris_beats_fifo_on_waste(self):
        fifo_engine = run(FifoScheduler(), disk_contention_jobs(4),
                          machines=2)
        tetris_engine = run(
            TetrisScheduler(TetrisConfig(fairness_knob=0.0)),
            disk_contention_jobs(4), machines=2,
        )
        assert (
            excess_holding(tetris_engine.placement_log, "mem")
            < excess_holding(fifo_engine.placement_log, "mem")
        )
