"""The bench subsystem: scenarios, profile capture, degradation detection.

Synthetic-profile tests pin the detector's decision rules (tolerance
bands, calibration rescaling, rank-test confirmation, per-phase
attribution); one real capture per scenario kind proves the pipeline
produces schema-valid, comparable artifacts end to end.
"""

import copy
import json

import pytest

from repro.bench import (
    SCHEMA,
    ProfileStore,
    SCENARIOS,
    capture,
    collect_profiles,
    compare_profiles,
    dump_json,
    get_scenario,
    load_profile,
    mann_whitney_p,
    profile_filename,
    render_trajectory,
    save_profile,
    scenario_names,
)
from repro.bench.detect import DEGRADED, IMPROVED, MISSING, NEW, STABLE
from repro.bench.scenarios import PackingScenario, packing_state

#: a deliberately tiny packing scenario so capture tests stay fast
TINY_PACKING = PackingScenario(
    name="tiny-packing",
    description="test-only",
    quick=True,
    num_machines=8,
    num_jobs=10,
    tasks_per_job=4,
    rounds=2,
    warmup=1,
)


def make_profile(metrics, scenario="synthetic", fingerprint="fp0",
                 calibration=0.01):
    """A minimal schema-valid profile for detector tests."""
    return {
        "schema": SCHEMA,
        "scenario": scenario,
        "kind": "trace",
        "created_unix": 1_000.0,
        "meta": {
            "git_sha": "deadbeef",
            "git_dirty": False,
            "host": "test",
            "platform": "test",
            "python": "3",
            "config_fingerprint": fingerprint,
            "calibration_seconds": calibration,
            "repeats": 3,
        },
        "metrics": metrics,
        "phases": {},
        "registry": {},
    }


def timing(value, samples=None, direction="lower"):
    return {
        "kind": "timing",
        "direction": direction,
        "unit": "s",
        "value": value,
        "samples": samples if samples is not None else [value],
    }


def fidelity(value, direction="lower"):
    return {
        "kind": "fidelity",
        "direction": direction,
        "unit": "s",
        "value": value,
        "samples": [value],
    }


class TestScenarios:
    def test_registry_has_quick_and_full_sets(self):
        quick = scenario_names(quick_only=True)
        everything = scenario_names()
        assert set(quick) < set(everything)
        assert "smoke" in quick
        assert "packing-micro" in quick
        assert "deploy" in everything and "deploy" not in quick

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_fingerprint_stable_and_config_sensitive(self):
        import dataclasses

        scenario = get_scenario("smoke")
        assert scenario.config_fingerprint() == scenario.config_fingerprint()
        changed = dataclasses.replace(scenario, num_machines=7)
        assert (
            changed.config_fingerprint() != scenario.config_fingerprint()
        )

    def test_fingerprint_ignores_description(self):
        import dataclasses

        scenario = TINY_PACKING
        relabeled = dataclasses.replace(scenario, description="other")
        assert (
            relabeled.config_fingerprint() == scenario.config_fingerprint()
        )

    def test_packing_state_has_pending_work(self):
        scheduler = packing_state(TINY_PACKING)
        placements = scheduler.schedule(
            0.0, list(range(TINY_PACKING.num_machines))
        )
        assert len(placements) > 0

    def test_benchmark_conftest_reuses_these_configs(self):
        """The pytest benchmark harness and repro bench must share one
        scenario source of truth."""
        deploy = SCENARIOS["deploy"]
        import repro.bench.scenarios as scenarios_mod

        assert deploy.trace_config is scenarios_mod.DEPLOY_SUITE
        assert deploy.num_machines == scenarios_mod.DEPLOY_MACHINES


class TestCapture:
    @pytest.fixture(scope="class")
    def smoke_profile(self):
        return capture("smoke", repeats=2)

    def test_schema_and_stamps(self, smoke_profile):
        p = smoke_profile
        assert p["schema"] == SCHEMA
        assert p["scenario"] == "smoke"
        assert p["kind"] == "trace"
        meta = p["meta"]
        assert meta["config_fingerprint"] == \
            get_scenario("smoke").config_fingerprint()
        assert meta["calibration_seconds"] > 0
        assert meta["repeats"] == 2
        # captured inside this repo, so the git stamp must resolve
        assert isinstance(meta["git_sha"], str) and len(meta["git_sha"]) == 40

    def test_metric_records(self, smoke_profile):
        metrics = smoke_profile["metrics"]
        for name in ("wall_seconds", "mean_jct", "makespan",
                     "num_placements"):
            assert name in metrics
            record = metrics[name]
            assert record["kind"] in ("timing", "fidelity")
            assert len(record["samples"]) == 2
        # fidelity metrics are deterministic across repeats (same seed)
        assert len(set(metrics["mean_jct"]["samples"])) == 1

    def test_phase_metrics_present_and_attributable(self, smoke_profile):
        phase_names = [
            n for n in smoke_profile["metrics"] if n.startswith("phase:")
        ]
        assert "phase:tetris.schedule:mean_ms" in phase_names
        assert "phase:engine.scheduler_round:mean_ms" in phase_names
        assert "tetris.schedule" in smoke_profile["phases"]
        assert smoke_profile["phases"]["tetris.schedule"]["count"] > 0

    def test_registry_snapshot_embedded(self, smoke_profile):
        registry = smoke_profile["registry"]
        assert "repro_engine_rounds_total" in registry
        assert registry["repro_engine_rounds_total"]["values"][""] > 0

    def test_packing_capture(self):
        p = capture(TINY_PACKING, repeats=2)
        assert p["kind"] == "packing"
        assert len(p["metrics"]["round_ms"]["samples"]) == \
            2 * TINY_PACKING.rounds
        assert p["metrics"]["placements_per_round"]["value"] > 0
        assert "phase:tetris.schedule:mean_ms" in p["metrics"]

    def test_clean_rerun_compares_stable(self, smoke_profile):
        again = capture("smoke", repeats=2)
        result = compare_profiles(smoke_profile, again)
        assert result.ok, result.render()

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            capture("smoke", repeats=0)

    def test_kernel_backend_stamped(self, smoke_profile):
        # no explicit selection: the resolved default is stamped
        assert smoke_profile["meta"]["kernel_backend"] == "numpy"

    def test_explicit_kernel_backend_stamped_and_env_restored(
        self, monkeypatch
    ):
        import os

        from repro.kernels import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        p = capture(TINY_PACKING, repeats=1, kernel_backend="scalar")
        assert p["meta"]["kernel_backend"] == "scalar"
        assert ENV_VAR not in os.environ  # restored after the capture

    def test_unknown_kernel_backend_fails_fast(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            capture(TINY_PACKING, repeats=1, kernel_backend="cuda")

    def test_compare_never_crosses_kernel_backends(self, smoke_profile):
        """A scalar capture must not gate against a numpy baseline: the
        timing delta would be the backend, not the commit."""
        other = capture("smoke", repeats=2, kernel_backend="scalar")
        result = compare_profiles(smoke_profile, other)
        assert result.config_mismatch
        assert any("kernel backend" in n for n in result.notes)
        # legacy profiles without the stamp read as the numpy default
        legacy = dict(smoke_profile)
        legacy["meta"] = {
            k: v for k, v in smoke_profile["meta"].items()
            if k != "kernel_backend"
        }
        assert compare_profiles(legacy, smoke_profile).ok


class TestSerialization:
    def test_round_trip(self, tmp_path):
        profile = make_profile({"m": fidelity(1.0)})
        path = save_profile(profile, tmp_path)
        assert path.name == profile_filename("synthetic") == \
            "BENCH_synthetic.json"
        loaded = load_profile(path)
        assert loaded == profile
        # round-tripped profiles compare clean against themselves
        assert compare_profiles(loaded, profile).ok

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": "other/v9", "scenario": "x"}))
        with pytest.raises(ValueError, match="not a"):
            load_profile(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema": SCHEMA, "scenario": "x"}))
        with pytest.raises(ValueError, match="missing"):
            load_profile(path)

    def test_dump_json_strict_and_atomic(self, tmp_path):
        target = tmp_path / "sub" / "out.json"
        dump_json({"a": 1.5}, target)  # creates the parent directory
        assert json.loads(target.read_text()) == {"a": 1.5}
        assert not list(tmp_path.glob("**/*.tmp"))
        with pytest.raises(ValueError):
            dump_json({"bad": float("nan")}, tmp_path / "nan.json")


class TestProfileStore:
    def test_store_listing_and_load(self, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.scenarios() == []
        assert store.load("absent") is None
        store.save(make_profile({"m": fidelity(1.0)}, scenario="aaa"))
        store.save(make_profile({"m": fidelity(2.0)}, scenario="bbb"))
        (tmp_path / "not-a-profile.txt").write_text("x")
        assert store.scenarios() == ["aaa", "bbb"]
        assert store.load("aaa")["metrics"]["m"]["value"] == 1.0
        assert len(store.load_all()) == 2


class TestMannWhitney:
    def test_clear_shift_is_significant(self):
        p = mann_whitney_p([10.0, 11.0, 12.0], [1.0, 2.0, 3.0])
        assert p < 0.1

    def test_reverse_shift_is_not(self):
        p = mann_whitney_p([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
        assert p > 0.9

    def test_interleaved_is_inconclusive(self):
        p = mann_whitney_p([1.0, 3.0, 5.0], [2.0, 4.0, 6.0])
        assert 0.2 < p < 0.9

    def test_all_ties(self):
        assert mann_whitney_p([1.0, 1.0], [1.0, 1.0]) >= 0.5

    def test_empty_sides(self):
        assert mann_whitney_p([], [1.0]) == 1.0
        assert mann_whitney_p([1.0], []) == 1.0


class TestDetector:
    def test_stable_within_band(self):
        base = make_profile({"t": timing(1.0), "f": fidelity(100.0)})
        cur = make_profile({"t": timing(1.2), "f": fidelity(100.5)})
        result = compare_profiles(base, cur)
        assert result.ok
        assert {v.status for v in result.verdicts} == {STABLE}

    def test_timing_degradation_confirmed_by_ranks(self):
        base = make_profile({"t": timing(1.0, [0.9, 1.0, 1.1])})
        cur = make_profile({"t": timing(2.0, [1.9, 2.0, 2.1])})
        result = compare_profiles(base, cur)
        assert not result.ok
        verdict = result.verdicts[0]
        assert verdict.status == DEGRADED
        assert "confirmed" in verdict.note

    def test_noisy_band_violation_downgraded(self):
        """Overlapping sample sets must not fail the gate even when the
        medians differ by more than the band."""
        base = make_profile({"t": timing(1.0, [0.5, 1.0, 3.1])})
        cur = make_profile({"t": timing(1.8, [0.6, 1.8, 2.9])})
        result = compare_profiles(base, cur)
        assert result.ok
        assert "not significant" in result.verdicts[0].note

    def test_single_samples_fall_back_to_band_only(self):
        base = make_profile({"t": timing(1.0, [1.0])})
        cur = make_profile({"t": timing(2.0, [2.0])})
        result = compare_profiles(base, cur)
        assert not result.ok
        assert "band only" in result.verdicts[0].note

    def test_timing_improvement_reported(self):
        base = make_profile({"t": timing(2.0, [1.9, 2.0, 2.1])})
        cur = make_profile({"t": timing(1.0, [0.9, 1.0, 1.1])})
        result = compare_profiles(base, cur)
        assert result.ok
        assert result.verdicts[0].status == IMPROVED

    def test_higher_is_better_direction(self):
        base = make_profile(
            {"rate": timing(100.0, [99.0, 100.0, 101.0],
                            direction="higher")}
        )
        cur = make_profile(
            {"rate": timing(40.0, [39.0, 40.0, 41.0], direction="higher")}
        )
        result = compare_profiles(base, cur)
        assert not result.ok
        assert result.verdicts[0].status == DEGRADED

    def test_fidelity_improvement_is_not_failure(self):
        base = make_profile({"mean_jct": fidelity(100.0)})
        cur = make_profile({"mean_jct": fidelity(80.0)})
        result = compare_profiles(base, cur)
        assert result.ok
        assert result.verdicts[0].status == IMPROVED

    def test_fidelity_regression_fails_without_rank_test(self):
        base = make_profile({"mean_jct": fidelity(100.0)})
        cur = make_profile({"mean_jct": fidelity(110.0)})
        result = compare_profiles(base, cur)
        assert not result.ok
        assert result.verdicts[0].status == DEGRADED

    def test_exact_metric_drift_fails_in_both_directions(self):
        base = make_profile(
            {"placements": fidelity(100.0, direction="exact")}
        )
        for drifted in (50.0, 200.0):
            cur = make_profile(
                {"placements": fidelity(drifted, direction="exact")}
            )
            result = compare_profiles(base, cur)
            assert not result.ok
            assert result.verdicts[0].status == DEGRADED

    def test_missing_and_new_metrics(self):
        base = make_profile({"gone": timing(1.0), "kept": fidelity(1.0)})
        cur = make_profile({"kept": fidelity(1.0), "added": timing(1.0)})
        result = compare_profiles(base, cur)
        statuses = {v.name: v.status for v in result.verdicts}
        assert statuses == {
            "gone": MISSING, "kept": STABLE, "added": NEW,
        }
        assert not result.ok  # a vanished metric is a failure

    def test_config_fingerprint_mismatch_refuses_comparison(self):
        base = make_profile({"t": timing(1.0)}, fingerprint="fpA")
        cur = make_profile({"t": timing(1.0)}, fingerprint="fpB")
        result = compare_profiles(base, cur)
        assert result.config_mismatch
        assert not result.ok
        assert result.verdicts == []
        assert any("fingerprint" in n for n in result.notes)

    def test_scenario_mismatch_refuses_comparison(self):
        base = make_profile({"t": timing(1.0)}, scenario="a")
        cur = make_profile({"t": timing(1.0)}, scenario="b")
        assert compare_profiles(base, cur).config_mismatch

    def test_calibration_rescales_cross_host_timings(self):
        """A 2x slower current host doubles its timings; after
        calibration rescaling that is NOT a degradation."""
        base = make_profile(
            {"t": timing(1.0, [0.9, 1.0, 1.1])}, calibration=0.01
        )
        cur = make_profile(
            {"t": timing(2.0, [1.8, 2.0, 2.2])}, calibration=0.02
        )
        result = compare_profiles(base, cur)
        assert result.ok, result.render()
        assert any("rescaled" in n for n in result.notes)
        # fidelity metrics must NOT be rescaled by host speed
        base_f = make_profile({"f": fidelity(100.0)}, calibration=0.01)
        cur_f = make_profile({"f": fidelity(150.0)}, calibration=0.02)
        assert not compare_profiles(base_f, cur_f).ok

    def test_phase_attribution_names_the_slow_phase(self):
        base = make_profile({
            "round_ms": timing(10.0, [9.0, 10.0, 11.0]),
            "phase:packing:mean_ms": timing(8.0, [7.0, 8.0, 9.0]),
            "phase:sorting:mean_ms": timing(2.0, [1.9, 2.0, 2.1]),
        })
        cur = make_profile({
            "round_ms": timing(20.0, [19.0, 20.0, 21.0]),
            "phase:packing:mean_ms": timing(18.0, [17.0, 18.0, 19.0]),
            "phase:sorting:mean_ms": timing(2.0, [1.9, 2.0, 2.1]),
        })
        result = compare_profiles(base, cur)
        assert not result.ok
        attribution = result.attribution()
        assert [v.phase_label for v in attribution] == ["packing"]
        assert "packing" in result.render()

    def test_injected_2x_slowdown_on_real_profile(self):
        """The acceptance bar: doubling the packing-phase timings of a
        real captured profile must trip the detector; the untouched
        profile must not."""
        base = capture(TINY_PACKING, repeats=3)
        clean = copy.deepcopy(base)
        assert compare_profiles(base, clean).ok
        slowed = copy.deepcopy(base)
        for record in slowed["metrics"].values():
            if record["kind"] == "timing" and record["direction"] == "lower":
                record["value"] *= 2.0
                record["samples"] = [s * 2.0 for s in record["samples"]]
        result = compare_profiles(base, slowed)
        assert not result.ok
        degraded = {v.name for v in result.degraded}
        assert "round_ms" in degraded
        assert [v.phase_label for v in result.attribution()] == \
            ["tetris.schedule"]


class TestTrajectoryReport:
    def _stores(self, tmp_path):
        early = make_profile({"mean_jct": fidelity(120.0),
                              "wall_seconds": timing(2.0)})
        early["created_unix"] = 1_000.0
        late = make_profile({"mean_jct": fidelity(100.0),
                             "wall_seconds": timing(1.5)})
        late["created_unix"] = 2_000.0
        other = make_profile({"round_ms": timing(25.0)}, scenario="pack")
        other["created_unix"] = 1_500.0
        a, b = tmp_path / "a", tmp_path / "b"
        save_profile(early, a)
        save_profile(other, a)
        save_profile(late, b)
        return a, b

    def test_collect_orders_by_scenario_then_time(self, tmp_path):
        a, b = self._stores(tmp_path)
        profiles = collect_profiles([a, b, tmp_path / "missing"])
        keys = [(p["scenario"], p["created_unix"]) for p in profiles]
        assert keys == [("pack", 1_500.0), ("synthetic", 1_000.0),
                        ("synthetic", 2_000.0)]

    def test_terminal_rendering(self, tmp_path):
        profiles = collect_profiles(self._stores(tmp_path))
        text = render_trajectory(profiles)
        assert "mean JCT (s)" in text
        assert "120.00" in text and "100.00" in text
        assert "25.00" in text
        # dirty-tree captures are marked
        assert "deadbeef" in text

    def test_markdown_rendering(self, tmp_path):
        profiles = collect_profiles(self._stores(tmp_path))
        text = render_trajectory(profiles, fmt="md")
        lines = text.splitlines()
        assert lines[0].startswith("| scenario |")
        assert lines[1].startswith("|---")
        assert all(line.endswith("|") for line in lines)

    def test_empty_rendering(self):
        assert render_trajectory([]) == "no profiles found"


class TestHarnessBenchHooks:
    def test_run_trace_reports_wall_and_placements(self):
        from repro.experiments.harness import ExperimentConfig, run_trace
        from repro.obs import Registry
        from repro.profiling import Profiler
        from repro.schedulers.tetris import TetrisScheduler
        from repro.workload.tracegen import (
            WorkloadSuiteConfig,
            generate_workload_suite,
        )

        trace = generate_workload_suite(
            WorkloadSuiteConfig(num_jobs=3, task_scale=0.02,
                                arrival_horizon=50, seed=2)
        )
        profiler, registry = Profiler(), Registry()
        result = run_trace(
            trace,
            TetrisScheduler(),
            ExperimentConfig(num_machines=4, seed=2),
            profiler=profiler,
            metrics=registry,
        )
        assert result.wall_seconds > 0
        assert result.num_placements > 0
        assert result.placements_per_sec > 0
        assert "tetris.schedule" in profiler.labels()
        assert registry.snapshot()["repro_engine_rounds_total"]["values"][""] > 0


class TestParallelCapture:
    """Capture through the process pool: identical fidelity, stamped meta."""

    def test_trace_capture_workers_parity(self):
        serial = capture("smoke", repeats=2)
        parallel = capture("smoke", repeats=2, workers=2)
        assert serial["meta"]["execution"] == {
            "backend": "serial", "workers": 1,
        }
        assert parallel["meta"]["execution"] == {
            "backend": "process", "workers": 2,
        }
        # fidelity samples are bit-identical across backends; wall-clock
        # timing metrics legitimately differ
        for name, record in serial["metrics"].items():
            if record["kind"] != "fidelity":
                continue
            assert parallel["metrics"][name]["samples"] == \
                record["samples"], name
        # phase detail and merged pools come back across the boundary
        assert "tetris.schedule" in parallel["phases"]
        assert parallel["phases_merged"]["tetris.schedule"]["count"] == \
            2 * parallel["phases"]["tetris.schedule"]["count"]
        assert "repro_engine_rounds_total" in parallel["registry"]

    def test_packing_capture_workers(self):
        p = capture(TINY_PACKING, repeats=2, workers=2)
        assert p["meta"]["execution"]["backend"] == "process"
        assert len(p["metrics"]["round_ms"]["samples"]) == \
            2 * TINY_PACKING.rounds
        assert p["metrics"]["placements_per_round"]["value"] > 0


class TestLegacyCalibration:
    """Baselines captured before the host-calibration stamp existed."""

    def _legacy(self, metrics):
        """A hand-rolled pre-calibration profile: no
        ``calibration_seconds`` in meta at all."""
        profile = make_profile(metrics)
        del profile["meta"]["calibration_seconds"]
        return profile

    def test_missing_baseline_calibration_warns_not_raises(self):
        base = self._legacy({"t": timing(1.0, [0.9, 1.0, 1.1])})
        cur = make_profile({"t": timing(1.0, [0.9, 1.0, 1.1])})
        with pytest.warns(RuntimeWarning, match="predates"):
            result = compare_profiles(base, cur)
        assert result.ok, result.render()
        assert any("rescaling skipped" in n for n in result.notes)

    def test_skipped_rescaling_means_raw_comparison(self):
        """Without a calibration constant the timings compare raw: a
        genuine 2x slowdown still trips the detector."""
        base = self._legacy({"t": timing(1.0, [0.9, 1.0, 1.1])})
        cur = make_profile({"t": timing(2.0, [1.8, 2.0, 2.2])})
        with pytest.warns(RuntimeWarning):
            result = compare_profiles(base, cur)
        assert not result.ok
        assert [v.name for v in result.degraded] == ["t"]

    def test_current_side_missing_calibration_also_degrades(self):
        base = make_profile({"t": timing(1.0, [0.9, 1.0, 1.1])})
        cur = self._legacy({"t": timing(1.0, [0.9, 1.0, 1.1])})
        with pytest.warns(RuntimeWarning, match="current"):
            result = compare_profiles(base, cur)
        assert result.ok
        assert any("skipped" in n for n in result.notes)

    def test_nonpositive_calibration_treated_as_legacy(self):
        base = make_profile({"t": timing(1.0, [1.0])}, calibration=0.0)
        cur = make_profile({"t": timing(1.0, [1.0])})
        with pytest.warns(RuntimeWarning):
            result = compare_profiles(base, cur)
        assert result.ok
