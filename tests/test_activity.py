"""Cluster-activity (ingestion/evacuation) tests, incl. the Figure 6
microbenchmark mechanism."""

import pytest

from repro.activity.ingestion import ClusterActivity, evacuation, ingestion
from repro.cluster.cluster import Cluster
from repro.estimation.tracker import ResourceTracker, TrackerConfig
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.job import Job
from repro.workload.stage import Stage

from conftest import make_task


class TestActivitySpecs:
    def test_ingestion_touches_netin_and_diskw(self):
        act = ingestion(0, start_time=10.0, size_mb=1000, rate_mbps=100)
        (spec,) = act.flow_specs()
        assert set(spec.slots) == {(0, "netin"), (0, "diskw")}
        assert act.nominal_duration == pytest.approx(10.0)

    def test_evacuation_touches_diskr_and_netout(self):
        act = evacuation(1, start_time=0.0, size_mb=500, rate_mbps=50)
        (spec,) = act.flow_specs()
        assert set(spec.slots) == {(1, "diskr"), (1, "netout")}

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ClusterActivity(0, 0.0, 10, 10, "demolition")

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ingestion(0, 0.0, 0, 10)


class TestActivityExecution:
    def test_activity_completes_in_engine(self):
        cluster = Cluster(2, machines_per_rack=2)
        act = ingestion(0, start_time=5.0, size_mb=1000, rate_mbps=100)
        engine = Engine(cluster, FifoScheduler(), [], activities=[act])
        engine.run()
        assert act.finish_time == pytest.approx(15.0)

    def test_activity_contends_with_tasks(self):
        """A disk-writing task sharing the machine with ingestion slows
        both down (the Figure 6 pathology under CS)."""
        cluster = Cluster(1)
        task = make_task(cpu=1, mem=1, diskw=150, write_mb=1500, cpu_work=1)
        job = Job([Stage("s", [task])])
        act = ingestion(0, start_time=0.0, size_mb=1500, rate_mbps=150)
        engine = Engine(cluster, FifoScheduler(), [job], activities=[act])
        engine.run()
        # alone, each would take 10s; the 300/200 oversubscription plus
        # the incast penalty stretches both well past that
        assert task.duration > 13.0
        assert act.finish_time > 13.0


class TestTrackerSteersAroundIngestion:
    def test_tetris_avoids_loaded_machine(self):
        """With the tracker, Tetris stops scheduling disk-hungry tasks on
        a machine under heavy ingestion (Figure 6)."""
        cluster = Cluster(2, machines_per_rack=2)
        tracker = ResourceTracker(
            cluster, TrackerConfig(report_period=1.0, ramp_seconds=0.0)
        )
        # heavy ingestion on machine 0 for a long time
        act = ingestion(0, start_time=0.0, size_mb=50_000, rate_mbps=180)
        tasks = [
            make_task(cpu=1, mem=1, diskw=100, write_mb=500, cpu_work=1)
            for _ in range(4)
        ]
        job = Job([Stage("s", tasks)], arrival_time=5.0)
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        engine = Engine(
            cluster,
            scheduler,
            [job],
            activities=[act],
            tracker=tracker,
            config=EngineConfig(tracker_period=1.0),
        )
        engine.run()
        # machine 0's disk is ~fully used by ingestion; all tasks land on 1
        assert all(t.machine_id == 1 for t in tasks)
