"""End-to-end engine tests on small controlled workloads."""

import pytest

from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskInput, TaskState, TaskWork

from conftest import make_simple_job, make_task, make_two_stage_job


def run_jobs(jobs, num_machines=4, scheduler=None, **engine_kw):
    cluster = Cluster(num_machines, machines_per_rack=2, seed=1)
    scheduler = scheduler if scheduler is not None else FifoScheduler()
    engine = Engine(cluster, scheduler, jobs,
                    config=EngineConfig(**engine_kw))
    collector = engine.run()
    return engine, collector


class TestBasicExecution:
    def test_single_job_completes(self):
        job = make_simple_job(num_tasks=4, cpu=2, cpu_work=20)
        engine, collector = run_jobs([job])
        assert job.is_finished
        assert job.completion_time == pytest.approx(10.0, rel=1e-6)
        assert collector.mean_jct() == pytest.approx(10.0, rel=1e-6)

    def test_cpu_task_duration_is_work_over_cores(self):
        job = make_simple_job(num_tasks=1, cpu=4, cpu_work=40)
        run_jobs([job])
        assert job.all_tasks()[0].duration == pytest.approx(10.0, rel=1e-6)

    def test_arrival_time_respected(self):
        job = make_simple_job(num_tasks=1, arrival_time=100.0, cpu_work=10)
        engine, collector = run_jobs([job])
        task = job.all_tasks()[0]
        assert task.start_time >= 100.0
        assert collector.makespan() == pytest.approx(10.0, rel=1e-6)

    def test_zero_work_task_charged_min_duration(self):
        task = Task(DEFAULT_MODEL.vector(cpu=1, mem=1), TaskWork())
        job = Job([Stage("s", [task])])
        run_jobs([job], min_task_duration=0.5)
        assert task.duration == pytest.approx(0.5)

    def test_two_stage_barrier_ordering(self):
        job = make_two_stage_job(num_map=3, num_reduce=2)
        run_jobs([job])
        map_finish = max(
            t.finish_time for t in job.dag.roots()[0].tasks
        )
        reduce_start = min(
            t.start_time for t in job.dag.leaves()[0].tasks
        )
        assert reduce_start >= map_finish

    def test_shuffle_inputs_resolved_to_parent_machines(self):
        job = make_two_stage_job(num_map=3, num_reduce=2)
        run_jobs([job])
        parent_machines = {
            t.machine_id for t in job.dag.roots()[0].tasks
        }
        for task in job.dag.leaves()[0].tasks:
            for inp in task.inputs:
                assert len(inp.locations) == 1
                assert inp.locations[0] in parent_machines

    def test_multiple_jobs(self):
        jobs = [make_simple_job(num_tasks=2, arrival_time=i * 5.0)
                for i in range(3)]
        engine, collector = run_jobs(jobs)
        assert all(j.is_finished for j in jobs)
        assert len(collector.jobs) == 3


class TestDeterminism:
    def _signature(self, seed):
        jobs = [make_two_stage_job(num_map=4, num_reduce=2,
                                   arrival_time=i * 3.0)
                for i in range(3)]
        cluster = Cluster(4, machines_per_rack=2, seed=seed)
        engine = Engine(cluster, TetrisScheduler(), jobs,
                        config=EngineConfig(seed=seed))
        engine.run()
        return [
            (t.machine_id, round(t.start_time, 9), round(t.finish_time, 9))
            for j in jobs
            for t in j.all_tasks()
        ]

    def test_same_seed_same_schedule(self):
        assert self._signature(5) == self._signature(5)


class TestInvariants:
    def test_memory_never_over_allocated_with_tetris(self):
        """Tetris checks every dimension, so booked allocations never
        exceed capacity at any machine."""
        jobs = [make_simple_job(num_tasks=6, cpu=4, mem=20, cpu_work=10,
                                arrival_time=i)
                for i in range(4)]
        cluster = Cluster(2, machines_per_rack=2)
        engine = Engine(cluster, TetrisScheduler(), jobs)

        # wrap placement to check the invariant at every instant
        original = engine._start_task

        def checked(placement):
            original(placement)
            machine = cluster.machine(placement.machine_id)
            assert machine.allocated.fits_in(machine.capacity)

        engine._start_task = checked
        engine.run()
        assert all(j.is_finished for j in jobs)

    def test_machines_empty_after_run(self):
        jobs = [make_two_stage_job() for _ in range(2)]
        engine, _ = run_jobs(jobs)
        for machine in engine.cluster.machines:
            assert machine.num_running == 0
            assert machine.allocated.is_zero()

    def test_all_flows_drained(self):
        jobs = [make_two_stage_job()]
        engine, _ = run_jobs(jobs)
        assert engine.flows.num_active == 0


class TestBoundedLogs:
    def test_logs_unbounded_by_default(self):
        jobs = [make_simple_job(num_tasks=6)]
        engine, _ = run_jobs(jobs)
        assert isinstance(engine.placement_log, list)
        assert len(engine.placement_log) == 6

    def test_caps_keep_only_most_recent_entries(self):
        """With the opt-in caps, long runs retain a bounded tail of the
        per-round and per-placement tuples instead of growing forever."""
        jobs = [make_simple_job(num_tasks=8, arrival_time=float(i))
                for i in range(3)]
        engine, _ = run_jobs(
            jobs, max_placement_log=5, max_round_log=4
        )
        assert all(j.is_finished for j in jobs)
        assert len(engine.placement_log) == 5
        assert len(engine.round_log) == 4
        # the retained entries are the latest ones, still in time order
        times = [t for (_task, _m, t, _b) in engine.placement_log]
        assert times == sorted(times)
        assert times[-1] == max(times)
        round_times = [t for (t, _m, _p, _w) in engine.round_log]
        assert round_times == sorted(round_times)

    def test_capped_run_simulates_identically(self):
        """The caps change what is *kept*, never what is *simulated*."""
        jobs_a = [make_simple_job(num_tasks=6)]
        engine_a, _ = run_jobs(jobs_a)
        jobs_b = [make_simple_job(num_tasks=6)]
        engine_b, _ = run_jobs(jobs_b, max_placement_log=2, max_round_log=1)
        finish = lambda jobs: sorted(
            t.finish_time for j in jobs for t in j.all_tasks()
        )
        assert finish(jobs_a) == finish(jobs_b)

    def test_zero_caps_disable_entry_construction(self):
        """With cap 0, the engine must gate log-entry *construction*
        behind the cap — the disabled-log sentinel raises on any append,
        so a full run is itself the regression guard for the
        zero-allocation round loop."""
        from repro.sim.engine import _DisabledLog

        jobs = [make_simple_job(num_tasks=8, arrival_time=float(i))
                for i in range(3)]
        engine, _ = run_jobs(jobs, max_placement_log=0, max_round_log=0)
        assert all(j.is_finished for j in jobs)
        assert isinstance(engine.placement_log, _DisabledLog)
        assert isinstance(engine.round_log, _DisabledLog)
        assert len(engine.placement_log) == 0
        assert len(engine.round_log) == 0
        assert list(engine.placement_log) == []
        # any code path that did build an entry would have blown up here
        with pytest.raises(RuntimeError, match="disabled"):
            engine.round_log.append((0.0, 0, 0, 0.0))

    def test_zero_capped_run_simulates_identically(self):
        jobs_a = [make_simple_job(num_tasks=6)]
        run_jobs(jobs_a)
        jobs_b = [make_simple_job(num_tasks=6)]
        run_jobs(jobs_b, max_placement_log=0, max_round_log=0)
        finish = lambda jobs: sorted(
            t.finish_time for j in jobs for t in j.all_tasks()
        )
        assert finish(jobs_a) == finish(jobs_b)


class TestStuckDetection:
    def test_unplaceable_task_raises(self):
        giant = Task(
            DEFAULT_MODEL.vector(cpu=64, mem=500), TaskWork(10)
        )
        job = Job([Stage("s", [giant])])
        with pytest.raises(RuntimeError, match="stuck"):
            run_jobs([job], scheduler=TetrisScheduler())

    def test_max_time_guard(self):
        job = make_simple_job(num_tasks=1, cpu=1, cpu_work=1000.0)
        with pytest.raises(RuntimeError, match="max_time"):
            run_jobs([job], max_time=10.0)


class TestContentionEndToEnd:
    def test_over_allocation_stretches_tasks(self):
        """A FIFO scheduler that only checks CPU+memory lets two
        disk-saturating writers share one machine's disk; both take about
        twice (plus penalty) their nominal duration."""
        tasks = [
            make_task(cpu=1, mem=1, diskw=200, write_mb=2000, cpu_work=1)
            for _ in range(2)
        ]
        job = Job([Stage("s", tasks)])
        run_jobs([job], num_machines=1)
        nominal = 10.0  # 2000 MB at 200 MB/s
        for task in tasks:
            assert task.duration > 2 * nominal  # sharing + incast penalty

    def test_tetris_avoids_the_contention(self):
        tasks = [
            make_task(cpu=1, mem=1, diskw=200, write_mb=2000, cpu_work=1)
            for _ in range(2)
        ]
        job = Job([Stage("s", tasks)])
        run_jobs([job], num_machines=2, scheduler=TetrisScheduler())
        for task in tasks:
            assert task.duration == pytest.approx(10.0, rel=1e-6)
        assert len({t.machine_id for t in tasks}) == 2
