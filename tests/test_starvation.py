"""Starvation prevention via machine reservations (Section 3.5 future
work, implemented as an opt-in Tetris extension)."""

import pytest

from repro.analysis.model import audit_engine
from repro.cluster.cluster import Cluster
from repro.resources import DEFAULT_MODEL
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import Task, TaskWork

from conftest import make_simple_job


def starving_scenario():
    """A stream of small jobs that, without reservations, could keep a
    giant task waiting: small tasks always fit the leftover resources,
    the 15-core task never does."""
    small_jobs = [
        make_simple_job(num_tasks=8, cpu=4, mem=4, cpu_work=40.0,
                        arrival_time=5.0 * i, name=f"small-{i}")
        for i in range(12)
    ]
    giant_task = Task(
        DEFAULT_MODEL.vector(cpu=15, mem=8), TaskWork(cpu_core_seconds=15.0)
    )
    giant = Job([Stage("giant", [giant_task])], arrival_time=0.0,
                name="giant")
    return small_jobs, giant, giant_task


class TestConfig:
    def test_disabled_by_default(self):
        assert TetrisConfig().starvation_timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TetrisConfig(starvation_timeout=0.0)
        with pytest.raises(ValueError):
            TetrisConfig(starvation_timeout=-5.0)


class TestReservations:
    def _run(self, timeout):
        small_jobs, giant, giant_task = starving_scenario()
        cluster = Cluster(2, machines_per_rack=2, seed=0)
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.0, starvation_timeout=timeout)
        )
        engine = Engine(cluster, scheduler, small_jobs + [giant])
        engine.run()
        return engine, giant_task

    def test_reservation_bounds_waiting_time(self):
        engine, giant_task = self._run(timeout=10.0)
        # the reservation drains one machine: the giant task starts well
        # before the whole small-job stream is finished
        assert giant_task.start_time is not None
        without_engine, without_task = self._run_without()
        assert giant_task.start_time <= without_task.start_time

    def _run_without(self):
        small_jobs, giant, giant_task = starving_scenario()
        cluster = Cluster(2, machines_per_rack=2, seed=0)
        scheduler = TetrisScheduler(TetrisConfig(fairness_knob=0.0))
        engine = Engine(cluster, scheduler, small_jobs + [giant])
        engine.run()
        return engine, giant_task

    def test_run_remains_feasible(self):
        engine, _ = self._run(timeout=10.0)
        report = audit_engine(engine)
        assert report.ok, report.violations[:3]

    def test_everything_still_finishes(self):
        engine, _ = self._run(timeout=10.0)
        assert all(j.is_finished for j in engine.jobs)

    def test_reservations_cleared_at_end(self):
        engine, _ = self._run(timeout=10.0)
        assert engine.scheduler._reservations == {}

    def test_no_reservations_without_starved_stages(self):
        jobs = [make_simple_job(num_tasks=4, cpu=1, mem=1, cpu_work=5.0)]
        cluster = Cluster(2, machines_per_rack=2)
        scheduler = TetrisScheduler(
            TetrisConfig(fairness_knob=0.0, starvation_timeout=60.0)
        )
        Engine(cluster, scheduler, jobs).run()
        assert scheduler._reservations == {}
