"""Metrics: collector, fairness, comparison helpers."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.comparison import (
    cdf_points,
    improvement_distribution,
    improvement_percent,
)
from repro.metrics.fairness import (
    job_slowdowns,
    relative_integral_unfairness_summary,
    slowdown_summary,
)

from conftest import make_simple_job


class TestCollector:
    def test_job_records(self):
        col = MetricsCollector()
        job = make_simple_job(arrival_time=10.0, name="j")
        col.job_arrived(job, 10.0)
        col.job_finished(job, 35.0)
        rec = col.jobs[job.job_id]
        assert rec.completion_time == pytest.approx(25.0)
        assert col.mean_jct() == pytest.approx(25.0)
        assert col.makespan() == pytest.approx(25.0)

    def test_makespan_from_first_arrival(self):
        col = MetricsCollector()
        a = make_simple_job(arrival_time=5.0)
        b = make_simple_job(arrival_time=20.0)
        col.job_arrived(a, 5.0)
        col.job_arrived(b, 20.0)
        col.job_finished(a, 50.0)
        col.job_finished(b, 80.0)
        assert col.makespan() == pytest.approx(75.0)

    def test_median_jct(self):
        col = MetricsCollector()
        for i, jct in enumerate((10.0, 20.0, 90.0)):
            job = make_simple_job(arrival_time=0.0)
            col.job_arrived(job, 0.0)
            col.job_finished(job, jct)
        assert col.median_jct() == pytest.approx(20.0)

    def test_empty_collector(self):
        col = MetricsCollector()
        assert col.mean_jct() == 0.0
        assert col.makespan() == 0.0
        assert col.mean_task_duration() == 0.0

    def test_task_durations(self):
        col = MetricsCollector()
        col.task_finished(10.0)
        col.task_finished(20.0)
        assert col.mean_task_duration() == pytest.approx(15.0)

    def test_fairness_accumulation(self):
        col = MetricsCollector(track_fairness=True)
        # two jobs, one hogging 80%: fair share is 50%
        col.accumulate_fairness(10.0, {1: 0.8, 2: 0.2})
        assert col.unfairness_integral[1] == pytest.approx(
            (0.8 - 0.5) / 0.5 * 10
        )
        assert col.unfairness_integral[2] == pytest.approx(
            (0.2 - 0.5) / 0.5 * 10
        )

    def test_fairness_disabled_by_default(self):
        col = MetricsCollector()
        col.accumulate_fairness(10.0, {1: 0.8})
        assert col.unfairness_integral == {}


class TestSlowdowns:
    def test_job_slowdowns(self):
        fair = {1: 100.0, 2: 100.0, 3: 50.0}
        other = {1: 120.0, 2: 80.0}
        s = job_slowdowns(fair, other)
        assert s[1] == pytest.approx(0.2)
        assert s[2] == pytest.approx(-0.2)
        assert 3 not in s

    def test_summary(self):
        fair = {i: 100.0 for i in range(10)}
        other = {i: (150.0 if i < 2 else 90.0) for i in range(10)}
        summary = slowdown_summary(fair, other)
        assert summary.fraction_slowed == pytest.approx(0.2)
        assert summary.mean_slowdown_of_slowed == pytest.approx(0.5)
        assert summary.max_slowdown == pytest.approx(0.5)

    def test_empty_summary(self):
        summary = slowdown_summary({}, {})
        assert summary.fraction_slowed == 0.0


class TestRIU:
    def test_summary(self):
        integrals = {1: -5.0, 2: 10.0}
        runtimes = {1: 100.0, 2: 100.0}
        out = relative_integral_unfairness_summary(integrals, runtimes)
        assert out["fraction_negative"] == pytest.approx(0.5)
        assert out["mean_negative_magnitude"] == pytest.approx(0.05)

    def test_empty(self):
        out = relative_integral_unfairness_summary({}, {})
        assert out["fraction_negative"] == 0.0


class TestComparison:
    def test_improvement_percent(self):
        assert improvement_percent(100, 70) == pytest.approx(30.0)
        assert improvement_percent(0, 10) == 0.0

    def test_improvement_distribution(self):
        base = {1: 100.0, 2: 200.0}
        treat = {1: 50.0, 2: 300.0}
        dist = sorted(improvement_distribution(base, treat))
        assert dist == [pytest.approx(-50.0), pytest.approx(50.0)]

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0], num_points=3)
        assert points[0] == (1.0, 0.0)
        assert points[1] == (2.0, 0.5)
        assert points[2] == (3.0, 1.0)

    def test_cdf_empty(self):
        assert cdf_points([]) == []
