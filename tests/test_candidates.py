"""Properties of the signature-grouped candidate index (ISSUE 5).

Covers the grouping invariants the incremental scheduling core rests on:

- tasks whose remote-input locations differ never share a signature
  group (locality decisions are never cross-contaminated);
- cached group packs are invalidated when the estimator revises a
  stage's demands (unstable estimates flush the index) and when shuffle
  resolution re-pins a stage's inputs;
- machine-equivalence classes: machines agreeing on (capacity vector,
  which-inputs-are-local pattern) share one computed pack, while
  heterogeneous capacities and differing locality patterns get their
  own;
- the round table's cross-machine cache of each stage's queue-front
  representative, and its invalidation when a claim consumes the rep.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.estimation.estimator import ProfilingEstimator
from repro.resources import DEFAULT_MODEL
from repro.schedulers.candidates import CandidateIndex, signature_of
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_simple_job, make_task


def _job_with_inputs(*inputs_per_task, netin=5.0):
    """One single-stage job; task ``i`` reads ``inputs_per_task[i]``."""
    tasks = [
        make_task(netin=netin, diskr=5.0, inputs=list(inputs))
        for inputs in inputs_per_task
    ]
    job = Job([Stage("s", tasks)])
    job.arrive()
    return job, tasks


def _bound_scheduler(cluster, job, estimator=None, time=0.0):
    scheduler = TetrisScheduler()
    scheduler.bind(cluster, estimator=estimator)
    scheduler.on_job_arrival(job, time)
    return scheduler


locations = st.lists(
    st.integers(min_value=0, max_value=7),
    min_size=0,
    max_size=3,
    unique=True,
).map(tuple)


class TestSignatureGrouping:
    @given(loc_a=locations, loc_b=locations)
    @settings(max_examples=80, deadline=None)
    def test_different_locations_never_share_a_group(self, loc_a, loc_b):
        """Same stage, same demands, same input size — the signatures
        coincide iff the replica locations do."""
        job, (task_a, task_b) = _job_with_inputs(
            [TaskInput(64.0, loc_a)], [TaskInput(64.0, loc_b)]
        )
        sig_a = signature_of(task_a, task_a.demands)
        sig_b = signature_of(task_b, task_b.demands)
        assert (sig_a == sig_b) == (loc_a == loc_b)

    def test_grouping_keeps_locality_decisions_apart(self):
        """Two peers whose only difference is where their input lives
        end up in distinct groups with distinct remote flags."""
        job, (local, remote) = _job_with_inputs(
            [TaskInput(64.0, (0,))], [TaskInput(64.0, (1,))]
        )
        scheduler = _bound_scheduler(Cluster(2, seed=0), job)
        pack_local = scheduler.candidates.pack(local, 0)
        pack_remote = scheduler.candidates.pack(remote, 0)
        assert scheduler.candidates.num_groups == 2
        assert pack_local[2] is False  # input replica on machine 0
        assert pack_remote[2] is True
        # netin is adjusted away only for the all-local placement
        assert pack_local[0].get("netin") == 0.0
        assert pack_remote[0].get("netin") > 0.0


class TestEstimateRevisionInvalidation:
    def test_unstable_estimator_revision_flushes_group_reuse(self):
        """Under a ProfilingEstimator a completion can move every peer
        mean, so a cached group pack must not be served afterwards."""
        job = make_simple_job(num_tasks=4, cpu=2.0, mem=3.0)
        job.arrive()
        scheduler = _bound_scheduler(
            Cluster(2, seed=0), job, estimator=ProfilingEstimator()
        )
        tasks = job.all_tasks()
        before = scheduler.candidates.pack(tasks[0], 0)
        assert scheduler.candidates.num_groups >= 1
        misses_before = scheduler.candidates.stats["misses"]
        # one peer finishes: the estimator's peer statistics (and with
        # them the whole stage's estimates) may shift
        tasks[1].mark_running(1, 0.0)
        tasks[1].mark_finished(5.0)
        scheduler.on_task_finished(tasks[1], 5.0)
        assert scheduler.candidates.num_groups == 0
        assert scheduler.candidates.stats["invalidations"] >= 1
        after = scheduler.candidates.pack(tasks[0], 0)
        assert scheduler.candidates.stats["misses"] == misses_before + 1
        assert after is not before

    def test_stable_estimator_keeps_group_reuse(self):
        """The default oracle estimator never revises: peers keep
        hitting the cached pack across completions."""
        job = make_simple_job(num_tasks=4)
        job.arrive()
        scheduler = _bound_scheduler(Cluster(2, seed=0), job)
        tasks = job.all_tasks()
        before = scheduler.candidates.pack(tasks[0], 0)
        tasks[1].mark_running(1, 0.0)
        tasks[1].mark_finished(5.0)
        scheduler.on_task_finished(tasks[1], 5.0)
        assert scheduler.candidates.pack(tasks[2], 0) is before


class TestMachineEquivalenceClasses:
    def test_homogeneous_machines_share_one_pack(self):
        """An input-free group computes one pack for the whole cluster."""
        job = make_simple_job(num_tasks=2)
        job.arrive()
        scheduler = _bound_scheduler(Cluster(3, seed=0), job)
        task = job.all_tasks()[0]
        first = scheduler.candidates.pack(task, 0)
        assert scheduler.candidates.pack(task, 1) is first
        assert scheduler.candidates.pack(task, 2) is first
        assert scheduler.candidates.stats["misses"] == 1
        assert scheduler.candidates.stats["hits"] == 2

    def test_heterogeneous_capacities_get_distinct_packs(self):
        """Byte-different capacity vectors are different classes: the
        capacity-normalized rows must not be shared between them."""
        small = DEFAULT_MODEL.vector(
            cpu=8, mem=32, diskr=100, diskw=100, netin=100, netout=100
        )
        big = small * 2.0
        cluster = Cluster(3, machine_capacities=[small, small, big], seed=0)
        job = make_simple_job(num_tasks=2, cpu=2.0, mem=4.0)
        job.arrive()
        scheduler = _bound_scheduler(cluster, job)
        task = job.all_tasks()[0]
        on_small = scheduler.candidates.pack(task, 0)
        assert scheduler.candidates.pack(task, 1) is on_small
        on_big = scheduler.candidates.pack(task, 2)
        assert on_big is not on_small
        assert scheduler.candidates.stats["misses"] == 2
        # same demand, twice the capacity: half the normalized row
        np.testing.assert_allclose(on_big[1], on_small[1] / 2.0)

    def test_local_input_pattern_splits_the_class(self):
        """Equal capacities share a pack only when the same inputs are
        replica-local; the machine holding the replica packs its own."""
        job, (task,) = _job_with_inputs([TaskInput(64.0, (1,))])
        scheduler = _bound_scheduler(Cluster(3, seed=0), job)
        remote_a = scheduler.candidates.pack(task, 0)
        local = scheduler.candidates.pack(task, 1)
        remote_b = scheduler.candidates.pack(task, 2)
        assert remote_b is remote_a
        assert local is not remote_a
        assert local[2] is False and remote_a[2] is True
        assert scheduler.candidates.stats["misses"] == 2


class TestRoundTableRepCache:
    def test_claim_invalidates_cached_queue_front(self):
        """The cross-machine rep cache must be refreshed after a claim —
        a stale entry would let two machines place the same task."""
        job = make_simple_job(num_tasks=3)
        job.arrive()
        scheduler = _bound_scheduler(Cluster(2, seed=0), job)
        stage = next(iter(job.dag))
        table = scheduler.candidates.round_table(
            scheduler.index, [job], lambda j: 0.0, set()
        )
        rep = table.any_rep_for(0, stage, scheduler.index)
        assert rep is not None
        scheduler.index.claim(rep)
        # cached until told otherwise (claims happen at one choke point)
        assert table.any_rep_for(0, stage, scheduler.index) is rep
        table.invalidate_stage_rep(stage.stage_id)
        fresh = table.any_rep_for(0, stage, scheduler.index)
        assert fresh is not None and fresh is not rep

    def test_invalidate_unknown_stage_is_a_noop(self):
        job = make_simple_job(num_tasks=1)
        job.arrive()
        scheduler = _bound_scheduler(Cluster(1, seed=0), job)
        table = scheduler.candidates.round_table(
            scheduler.index, [job], lambda j: 0.0, set()
        )
        table.invalidate_stage_rep(999_999)  # must not raise
