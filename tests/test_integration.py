"""Cross-module integration tests: the paper's headline claims in miniature.

These run the full pipeline (trace generation -> materialization ->
fluid simulation -> metrics) and check the *directions* the paper
reports: Tetris beats the slot-fair and DRF baselines on both average
job completion time and makespan, avoids over-allocation, and the
combined heuristic beats either half alone.
"""

import pytest

from repro.experiments.harness import ExperimentConfig, run_comparison
from repro.metrics.comparison import improvement_percent
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.packing_only import PackingOnlyScheduler
from repro.schedulers.slot_fair import SlotFairScheduler
from repro.schedulers.srtf import SRTFScheduler
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


@pytest.fixture(scope="module")
def results():
    trace = generate_workload_suite(
        WorkloadSuiteConfig(num_jobs=24, task_scale=0.04,
                            arrival_horizon=300, seed=11)
    )
    return run_comparison(
        trace,
        {
            "tetris": TetrisScheduler,
            "slot-fair": SlotFairScheduler,
            "capacity": CapacityScheduler,
            "drf": DRFScheduler,
            "srtf-only": SRTFScheduler,
            "packing-only": PackingOnlyScheduler,
        },
        ExperimentConfig(num_machines=8, seed=11, use_tracker=True),
    )


class TestHeadlineClaims:
    @pytest.mark.parametrize("baseline", ["slot-fair", "capacity", "drf"])
    def test_tetris_improves_mean_jct(self, results, baseline):
        gain = improvement_percent(
            results[baseline].mean_jct, results["tetris"].mean_jct
        )
        assert gain > 10.0, f"JCT gain vs {baseline}: {gain:.1f}%"

    @pytest.mark.parametrize("baseline", ["slot-fair", "capacity", "drf"])
    def test_tetris_improves_makespan(self, results, baseline):
        gain = improvement_percent(
            results[baseline].makespan, results["tetris"].makespan
        )
        assert gain > 5.0, f"makespan gain vs {baseline}: {gain:.1f}%"

    def test_tetris_shortens_tasks_by_avoiding_over_allocation(self, results):
        """Section 5.3.1: task durations improve because contention from
        over-allocated disk/network disappears."""
        tetris = results["tetris"].collector.mean_task_duration()
        fair = results["slot-fair"].collector.mean_task_duration()
        assert tetris < fair

    def test_combination_tracks_srtf_on_makespan(self, results):
        """SRTF without packing fragments resources (Section 3.3).  At
        this miniature scale fragmentation pressure is light, so we only
        require the combination to stay close; the crisp crossover is
        exercised at full scale in benchmarks/test_ablations.py."""
        assert (
            results["tetris"].makespan
            < results["srtf-only"].makespan * 1.15
        )

    def test_combination_beats_packing_alone_on_jct(self, results):
        """Packing without SRTF ignores job completion time."""
        assert results["tetris"].mean_jct < results["packing-only"].mean_jct

    def test_tetris_never_over_allocates_booked_dimensions(self, results):
        """Figure 5: CS demand-utilization crosses 100% on disk/network;
        Tetris stays within capacity on the dimensions it books locally
        (disk-write, network-in).  Source-side read bandwidth is checked
        but not reserved — the paper's design — so tiny transient
        overshoot is possible there and not asserted."""
        def peak(result, resources):
            return max(
                point.demand_utilization[res]
                for point in result.collector.timeline
                for res in resources
            )

        assert peak(results["tetris"], ("diskw", "netin")) <= 1.0 + 1e-9
        assert peak(
            results["slot-fair"], ("diskr", "diskw", "netin", "netout")
        ) > 1.0

    def test_every_scheduler_finished_every_job(self, results):
        counts = {name: len(r.collector.jobs) for name, r in results.items()}
        assert len(set(counts.values())) == 1
