"""Trace schema, JSON round-trip, and materialization tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.workload.trace import (
    TraceJob,
    TraceStage,
    load_trace,
    materialize_trace,
    save_trace,
)


def two_stage_trace_job(name="j0", arrival=5.0):
    return TraceJob(
        name=name,
        arrival_time=arrival,
        template="tpl",
        stages=[
            TraceStage(
                name="map", num_tasks=3, cpu=1, mem=2, diskr=40, diskw=10,
                netin=40, cpu_work=15, input_mb_per_task=256,
                write_mb_per_task=64,
            ),
            TraceStage(
                name="reduce", num_tasks=2, cpu=1, mem=1, diskr=30,
                diskw=30, netin=30, cpu_work=5, input_mb_per_task=96,
                write_mb_per_task=96, parents=["map"], input_kind="shuffle",
                shuffle_fanin=2,
            ),
        ],
    )


class TestTraceSchema:
    def test_negative_tasks_rejected(self):
        with pytest.raises(ValueError):
            TraceStage(name="s", num_tasks=-1)

    def test_bad_input_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceStage(name="s", num_tasks=1, input_kind="wormhole")


class TestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        trace = [two_stage_trace_job("a"), two_stage_trace_job("b", 9.0)]
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert loaded[0].name == "a"
        assert loaded[1].arrival_time == 9.0
        assert loaded[0].stages[1].parents == ["map"]
        assert loaded[0].stages[0].diskr == 40


class TestMaterialize:
    def test_structure(self):
        cluster = Cluster(8, machines_per_rack=4)
        jobs = materialize_trace([two_stage_trace_job()], cluster)
        assert len(jobs) == 1
        job = jobs[0]
        assert job.num_tasks == 5
        assert job.arrival_time == 5.0
        assert job.template == "tpl"
        names = [s.name for s in job.dag]
        assert names == ["map", "reduce"]

    def test_map_inputs_have_replicas(self):
        cluster = Cluster(8, machines_per_rack=4)
        job = materialize_trace([two_stage_trace_job()], cluster)[0]
        map_stage = job.dag.roots()[0]
        for task in map_stage.tasks:
            assert len(task.inputs) == 1
            assert len(task.inputs[0].locations) == 3

    def test_shuffle_inputs_unpinned(self):
        cluster = Cluster(8, machines_per_rack=4)
        job = materialize_trace([two_stage_trace_job()], cluster)[0]
        reduce_stage = job.dag.leaves()[0]
        for task in reduce_stage.tasks:
            assert len(task.inputs) == 2  # shuffle_fanin
            assert all(inp.locations == () for inp in task.inputs)

    def test_demands_clamped_to_machine_capacity(self):
        cluster = Cluster(4)
        stage = TraceStage(name="s", num_tasks=1, cpu=100, mem=500,
                           diskr=10_000, cpu_work=10)
        job = materialize_trace(
            [TraceJob("j", 0.0, [stage])], cluster
        )[0]
        task = job.all_tasks()[0]
        cap = cluster.machine_capacity()
        assert task.demands.fits_in(cap)

    def test_determinism(self):
        trace = [two_stage_trace_job()]
        j1 = materialize_trace(trace, Cluster(8, seed=3), seed=11)[0]
        j2 = materialize_trace(trace, Cluster(8, seed=3), seed=11)[0]
        d1 = [t.demands.as_dict() for t in j1.all_tasks()]
        d2 = [t.demands.as_dict() for t in j2.all_tasks()]
        assert d1 == d2

    def test_jitter_varies_demands(self):
        stage = TraceStage(name="s", num_tasks=20, cpu=2, mem=2,
                           cpu_work=10, demand_jitter=0.3)
        cluster = Cluster(4)
        job = materialize_trace([TraceJob("j", 0.0, [stage])], cluster)[0]
        cpus = {round(t.demands.get("cpu"), 6) for t in job.all_tasks()}
        assert len(cpus) > 1
