"""Quincy-style min-cost-flow scheduler tests."""

import pytest

from repro.cluster.cluster import Cluster
from repro.schedulers.flow_network import FlowNetworkScheduler
from repro.sim.engine import Engine
from repro.workload.job import Job
from repro.workload.stage import Stage
from repro.workload.task import TaskInput

from conftest import make_simple_job, make_task, make_two_stage_job


def schedule_once(scheduler, jobs, num_machines=2):
    cluster = Cluster(num_machines, machines_per_rack=2)
    scheduler.bind(cluster)
    for job in jobs:
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
    return cluster, scheduler.schedule(0.0)


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FlowNetworkScheduler(slot_mem_gb=0)
        with pytest.raises(ValueError):
            FlowNetworkScheduler(max_tasks_per_round=0)

    def test_network_shape(self):
        scheduler = FlowNetworkScheduler()
        cluster = Cluster(4, machines_per_rack=2)
        scheduler.bind(cluster)
        job = make_simple_job(num_tasks=3)
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        graph = scheduler.build_network(scheduler._runnable_tasks())
        assert "sink" in graph and "unsched" in graph and "cluster" in graph
        assert sum(1 for n in graph if str(n).startswith("m")) == 4
        assert sum(1 for n in graph if str(n).startswith("t")) == 3
        assert sum(1 for n in graph if str(n).startswith("rack")) == 2


class TestAssignment:
    def test_everything_placed_when_room(self):
        job = make_simple_job(num_tasks=6, mem=2)
        cluster, placements = schedule_once(FlowNetworkScheduler(), [job])
        assert len(placements) == 6

    def test_data_locality_preferred(self):
        cluster = Cluster(4, machines_per_rack=2)
        scheduler = FlowNetworkScheduler()
        scheduler.bind(cluster)
        tasks = [
            make_task(cpu=1, mem=2, diskr=40, netin=40, cpu_work=5,
                      inputs=[TaskInput(100.0, (2,))])
            for _ in range(3)
        ]
        job = Job([Stage("map", tasks)])
        job.arrive()
        scheduler.on_job_arrival(job, 0.0)
        placements = scheduler.schedule(0.0)
        # machine 2 holds all the data and has plenty of slots
        assert all(p.machine_id == 2 for p in placements)

    def test_capacity_respected(self):
        scheduler = FlowNetworkScheduler(slot_mem_gb=2.0)
        job = make_simple_job(num_tasks=100, mem=2)
        cluster, placements = schedule_once(scheduler, [job],
                                            num_machines=1)
        assert len(placements) == 24  # 48 GB / 2 GB slots

    def test_round_cap(self):
        scheduler = FlowNetworkScheduler(max_tasks_per_round=5)
        job = make_simple_job(num_tasks=50, mem=2)
        cluster, placements = schedule_once(scheduler, [job])
        assert len(placements) <= 5


class TestEndToEnd:
    def test_simple_workload_completes(self):
        jobs = [make_simple_job(num_tasks=4, cpu=2, cpu_work=10,
                                arrival_time=float(i)) for i in range(3)]
        cluster = Cluster(2, machines_per_rack=2)
        Engine(cluster, FlowNetworkScheduler(), jobs).run()
        assert all(j.is_finished for j in jobs)

    def test_barriered_workload_completes(self):
        jobs = [make_two_stage_job(num_map=4, num_reduce=2)]
        cluster = Cluster(2, machines_per_rack=2)
        Engine(cluster, FlowNetworkScheduler(), jobs).run()
        assert jobs[0].is_finished

    def test_slots_restored(self):
        jobs = [make_simple_job(num_tasks=6, mem=2, cpu_work=5)]
        cluster = Cluster(2, machines_per_rack=2)
        scheduler = FlowNetworkScheduler()
        Engine(cluster, scheduler, jobs).run()
        assert all(
            scheduler._slots_free[m.machine_id] == 24
            for m in cluster.machines
        )
