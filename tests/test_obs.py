"""The observability subsystem: registry, decision trace, timeline export.

Covers:

- the Prometheus-style registry: counter/gauge/histogram semantics,
  labels, idempotent re-registration, and the text exposition format;
- the decision trace: ring-buffer bounds, JSONL streaming, schema
  validation, and the log summarizer;
- the Chrome trace-event (Perfetto) export: lane packing and the event
  shapes Perfetto requires;
- end-to-end wiring: a traced engine run emits the documented event
  types, metrics move, and the estimator/tracker instruments fire.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.estimation.estimator import ProfilingEstimator
from repro.estimation.tracker import ResourceTracker
from repro.obs import (
    Counter,
    DecisionTrace,
    Gauge,
    Histogram,
    Registry,
    RollingWindow,
    chrome_trace_events,
    parse_exposition,
    summarize_decision_log,
    validate_event,
    validate_jsonl,
    write_chrome_trace,
)
from repro.obs.timeline import _assign_lanes
from repro.schedulers.drf import DRFScheduler
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


def _workload(num_jobs=6, seed=11, horizon=100.0):
    return generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs,
            task_scale=0.02,
            arrival_horizon=horizon,
            seed=seed,
        )
    )


def _traced_run(
    scheduler=None, num_machines=4, seed=0, trace_seed=11, **engine_kwargs
):
    trace = _workload(seed=trace_seed)
    cluster = Cluster(num_machines, seed=seed)
    jobs = materialize_trace(trace, cluster, seed=seed)
    sink = DecisionTrace(max_events=500_000)
    registry = Registry()
    engine = Engine(
        cluster,
        scheduler if scheduler is not None else TetrisScheduler(),
        jobs,
        decision_trace=sink,
        metrics=registry,
        config=EngineConfig(seed=seed),
        **engine_kwargs,
    )
    engine.run()
    return engine, sink, registry


# -- the registry ---------------------------------------------------------------
class TestRegistry:
    def test_counter_monotonic(self):
        reg = Registry()
        c = reg.counter("x_total", "doc")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_and_down(self):
        reg = Registry()
        g = reg.gauge("depth", "doc")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8

    def test_histogram_buckets_and_sum(self):
        h = Histogram(buckets=(1.0, 5.0))
        for v in (0.5, 2.0, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 102.5
        assert h.cumulative_counts() == [1, 2, 3]  # le=1, le=5, le=+Inf

    def test_labels_create_children(self):
        reg = Registry()
        fam = reg.counter("hits_total", "doc", labelnames=("scope",))
        fam.labels(scope="a").inc()
        fam.labels(scope="a").inc()
        fam.labels(scope="b").inc()
        assert fam.labels(scope="a").value == 2
        assert fam.labels(scope="b").value == 1

    def test_wrong_labels_rejected(self):
        reg = Registry()
        fam = reg.counter("hits_total", "doc", labelnames=("scope",))
        with pytest.raises(ValueError):
            fam.labels(other="x")
        with pytest.raises(ValueError):
            fam.inc()  # labeled family has no implicit child

    def test_reregistration_idempotent_same_type(self):
        reg = Registry()
        a = reg.counter("x_total", "doc")
        b = reg.counter("x_total", "doc")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("x_total", "doc")

    def test_invalid_names_rejected(self):
        reg = Registry()
        with pytest.raises(ValueError):
            reg.counter("0bad", "doc")
        with pytest.raises(ValueError):
            reg.counter("ok_total", "doc", labelnames=("bad-label",))

    def test_render_exposition_format(self):
        reg = Registry()
        reg.counter("a_total", "counts things").inc(2)
        reg.gauge("b").set(1.5)
        fam = reg.counter("c_total", "labeled", labelnames=("kind",))
        fam.labels(kind="x").inc()
        reg.histogram("d", "hist", buckets=(1.0,)).observe(0.5)
        text = reg.render()
        assert "# HELP a_total counts things" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 2" in text
        assert "b 1.5" in text
        assert 'c_total{kind="x"} 1' in text
        assert 'd_bucket{le="1"} 1' in text
        assert 'd_bucket{le="+Inf"} 1' in text
        assert "d_sum 0.5" in text
        assert "d_count 1" in text
        assert text.endswith("\n")

    def test_empty_render(self):
        assert Registry().render() == ""

    def test_reexported_from_metrics_package(self):
        from repro.metrics import (
            Counter as C,
            Gauge as G,
            Histogram as H,
            Registry as R,
        )

        assert (C, G, H, R) == (Counter, Gauge, Histogram, Registry)


class TestHistogramQuantile:
    def test_linear_interpolation_within_bucket(self):
        h = Histogram(buckets=(10.0, 20.0))
        for v in (1.0, 2.0, 3.0, 4.0):  # all land in (0, 10]
            h.observe(v)
        # rank 2 of 4 → half-way through the only occupied bucket
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_interpolates_across_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            h.observe(v)
        # p75 → rank 3 = upper edge of the (1, 2] bucket
        assert h.quantile(0.75) == pytest.approx(2.0)
        # p100 lands in (2, 4]
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.5) == pytest.approx(1.0)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_out_of_range_rejected(self):
        h = Histogram(buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_as_dict_shape(self):
        h = Histogram(buckets=(1.0, 5.0))
        for v in (0.5, 2.0, 100.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(102.5)
        assert d["buckets"] == {"1": 1, "5": 2, "+Inf": 3}
        assert 0.0 < d["p50"] <= 5.0

    def test_empty_as_dict_has_null_quantiles(self):
        d = Histogram(buckets=(1.0,)).as_dict()
        assert d["p50"] is None and d["p99"] is None
        json.dumps(d)  # strict-JSON serializable


class TestRegistrySnapshot:
    def test_snapshot_plain_dict(self):
        reg = Registry()
        reg.counter("a_total", "counts").inc(2)
        reg.gauge("depth").set(1.5)
        fam = reg.counter("c_total", "labeled", labelnames=("kind",))
        fam.labels(kind="x").inc()
        fam.labels(kind="y").inc(3)
        reg.histogram("lat", "latency", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["a_total"] == {
            "type": "counter", "help": "counts", "values": {"": 2.0},
        }
        assert snap["depth"]["values"][""] == 1.5
        assert snap["c_total"]["values"] == {"kind=x": 1.0, "kind=y": 3.0}
        assert snap["lat"]["values"][""]["count"] == 1
        assert snap["lat"]["values"][""]["buckets"]["+Inf"] == 1

    def test_snapshot_is_json_serializable(self):
        reg = Registry()
        reg.counter("a_total").inc()
        reg.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        json.dumps(reg.snapshot(), allow_nan=False)

    def test_empty_snapshot(self):
        assert Registry().snapshot() == {}


class TestParseExposition:
    def test_round_trips_rendered_registry(self):
        """render() output parses back to the same values, with label
        keys in the snapshot() shape."""
        reg = Registry()
        reg.counter("a_total", "counts").inc(2)
        reg.gauge("depth", "queue depth").set(1.5)
        fam = reg.counter("c_total", "labeled", labelnames=("kind",))
        fam.labels(kind="x").inc()
        fam.labels(kind="y").inc(3)
        parsed = parse_exposition(reg.render())
        assert parsed["a_total"] == {"": 2.0}
        assert parsed["depth"] == {"": 1.5}
        assert parsed["c_total"] == {"kind=x": 1.0, "kind=y": 3.0}

    def test_histogram_series_surface_as_samples(self):
        reg = Registry()
        reg.histogram("lat", "latency", buckets=(1.0,)).observe(0.5)
        parsed = parse_exposition(reg.render())
        assert parsed["lat_bucket"]["le=1"] == 1.0
        assert parsed["lat_bucket"]["le=+Inf"] == 1.0
        assert parsed["lat_count"][""] == 1.0
        assert parsed["lat_sum"][""] == 0.5

    def test_empty_and_comment_lines_ignored(self):
        assert parse_exposition("") == {}
        assert parse_exposition("# HELP x y\n# TYPE x counter\n") == {}

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("!!not a metric!!")


class TestLabelEscaping:
    """Prometheus exposition escaping: label values may contain any
    byte; ``\\``, ``\"`` and newlines must be escaped on render and
    restored on parse."""

    @pytest.mark.parametrize(
        "value",
        [
            'quoted "value"',
            "back\\slash",
            "multi\nline",
            'all \\ of "them"\ntogether',
            "braces } and { and = and ,",
        ],
    )
    def test_label_value_round_trips(self, value):
        reg = Registry()
        fam = reg.counter("esc_total", "doc", labelnames=("job",))
        fam.labels(job=value).inc(3)
        parsed = parse_exposition(reg.render())
        assert parsed["esc_total"] == {f"job={value}": 3.0}

    def test_rendered_line_is_single_line(self):
        # a newline in a label value must not split the sample line
        reg = Registry()
        reg.counter("nl_total", "doc", labelnames=("j",)).labels(
            j="a\nb"
        ).inc()
        sample_lines = [
            line
            for line in reg.render().splitlines()
            if not line.startswith("#") and line
        ]
        assert sample_lines == ['nl_total{j="a\\nb"} 1']

    def test_help_text_newlines_escaped(self):
        reg = Registry()
        reg.counter("h_total", "first\nsecond \\ slash")
        rendered = reg.render()
        assert "# HELP h_total first\\nsecond \\\\ slash" in rendered
        # still parseable
        assert parse_exposition(rendered)["h_total"] == {"": 0.0}

    def test_closing_brace_inside_label_value(self):
        # the sample regex must not stop at the first '}' it sees
        reg = Registry()
        reg.gauge("g", "doc", labelnames=("expr",)).labels(
            expr='x{y="z"}'
        ).set(2.5)
        parsed = parse_exposition(reg.render())
        assert parsed["g"] == {'expr=x{y="z"}': 2.5}


class TestRollingWindow:
    def test_rate_over_partial_window(self):
        win = RollingWindow(window=60.0)
        win.add(0.0, 10.0)
        win.add(10.0, 20.0)
        # only 10s have elapsed: divide by the observed span, not 60
        assert win.rate(10.0) == pytest.approx(3.0)

    def test_old_samples_age_out(self):
        win = RollingWindow(window=5.0)
        win.add(0.0, 1.0)
        win.add(1.0, 1.0)
        win.add(10.0, 1.0)
        assert win.count(10.0) == 1
        assert win.total(10.0) == 1.0

    def test_quantiles_are_exact_on_retained_values(self):
        win = RollingWindow(window=100.0)
        for i, v in enumerate([5.0, 1.0, 3.0, 2.0, 4.0]):
            win.add(float(i), v)
        assert win.quantile(0.0, 4.0) == 1.0
        assert win.quantile(0.5, 4.0) == 3.0
        assert win.quantile(1.0, 4.0) == 5.0

    def test_empty_quantile_is_nan(self):
        import math

        win = RollingWindow(window=5.0)
        assert math.isnan(win.quantile(0.5, 0.0))
        win.add(0.0, 1.0)
        # once the only sample ages out the window is empty again
        assert math.isnan(win.quantile(0.5, 100.0))

    def test_max_samples_caps_memory(self):
        win = RollingWindow(window=1e9, max_samples=4)
        for i in range(10):
            win.add(float(i), 1.0)
        assert len(win) == 4
        assert win.total(9.0) == 4.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            RollingWindow(window=0.0)
        win = RollingWindow()
        with pytest.raises(ValueError):
            win.quantile(1.5, 0.0)


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = Registry(), Registry()
        a.counter("x_total", "doc").inc(2)
        b.counter("x_total", "doc").inc(3)
        a.merge(b)
        assert a.counter("x_total", "doc").value == 5
        # the source registry is untouched
        assert b.counter("x_total", "doc").value == 3

    def test_gauges_last_write_wins(self):
        a, b = Registry(), Registry()
        a.gauge("depth").set(4)
        b.gauge("depth").set(7)
        a.merge(b)
        assert a.gauge("depth").value == 7

    def test_histograms_add_bucketwise(self):
        a, b = Registry(), Registry()
        a.histogram("lat", buckets=(1.0, 5.0)).observe(0.5)
        b.histogram("lat", buckets=(1.0, 5.0)).observe(2.0)
        b.histogram("lat", buckets=(1.0, 5.0)).observe(100.0)
        a.merge(b)
        merged = a.snapshot()["lat"]["values"][""]
        assert merged["count"] == 3
        assert merged["sum"] == 102.5
        assert merged["buckets"] == {"1": 1, "5": 2, "+Inf": 3}

    def test_mismatched_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))

    def test_labeled_children_merge_and_copy(self):
        a, b = Registry(), Registry()
        fam_a = a.counter("hits_total", "doc", labelnames=("scope",))
        fam_a.labels(scope="x").inc()
        fam_b = b.counter("hits_total", "doc", labelnames=("scope",))
        fam_b.labels(scope="x").inc(2)
        fam_b.labels(scope="y").inc(5)  # child absent from a
        a.merge(b)
        assert fam_a.labels(scope="x").value == 3
        assert fam_a.labels(scope="y").value == 5

    def test_missing_family_copied_over(self):
        a, b = Registry(), Registry()
        b.counter("only_in_b_total", "doc").inc(4)
        a.merge(b)
        assert a.counter("only_in_b_total", "doc").value == 4

    def test_type_conflict_rejected(self):
        a, b = Registry(), Registry()
        a.counter("x_total", "doc")
        b_reg = b.gauge("x_total", "doc")
        assert b_reg is not None
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_returns_self_for_chaining(self):
        a, b, c = Registry(), Registry(), Registry()
        b.counter("n_total").inc()
        c.counter("n_total").inc()
        assert a.merge(b).merge(c) is a
        assert a.counter("n_total").value == 2

    def test_merged_snapshot_equals_single_registry(self):
        # split a stream of observations across two registries; merging
        # them must equal observing everything in one
        one, left, right = Registry(), Registry(), Registry()
        for i, reg in enumerate([left, right, left, right, left]):
            reg.counter("events_total").inc()
            reg.histogram("lat", buckets=(1.0, 10.0)).observe(float(i))
            one.counter("events_total").inc()
            one.histogram("lat", buckets=(1.0, 10.0)).observe(float(i))
        left.merge(right)
        snap, ref = left.snapshot(), one.snapshot()
        assert snap == ref


# -- the decision trace ---------------------------------------------------------
class TestDecisionTrace:
    def test_ring_buffer_bounds_memory(self):
        sink = DecisionTrace(max_events=10)
        for i in range(25):
            sink.emit("round", time=float(i), machines=1, placements=0,
                      queue_depth=0)
        assert len(sink) == 10
        assert sink.emitted == 25
        assert sink.dropped == 15
        # oldest events fell off the front
        assert sink.events()[0]["time"] == 15.0

    def test_streaming_survives_ring_overflow(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with DecisionTrace(path, max_events=5) as sink:
            for i in range(20):
                sink.emit("round", time=float(i), machines=1,
                          placements=0, queue_depth=0)
        lines = path.read_text().splitlines()
        assert len(lines) == 20  # the file kept everything
        valid, errors = validate_jsonl(path)
        assert (valid, errors) == (20, [])

    def test_events_filter_and_tally(self):
        sink = DecisionTrace()
        sink.emit("round", time=0.0, machines=1, placements=1, queue_depth=0)
        sink.emit("task_start", time=0.0, job="j", stage="s", task=0,
                  machine=0)
        assert len(sink.events("round")) == 1
        assert sink.tally() == {"round": 1, "task_start": 1}

    def test_write_jsonl_dumps_buffer(self, tmp_path):
        sink = DecisionTrace()
        sink.emit("round", time=0.0, machines=2, placements=0, queue_depth=3)
        path = tmp_path / "dump.jsonl"
        sink.write_jsonl(path)
        assert json.loads(path.read_text())["queue_depth"] == 3

    def test_invalid_max_events(self):
        with pytest.raises(ValueError):
            DecisionTrace(max_events=0)


class TestEventValidation:
    def test_valid_events_pass(self):
        validate_event({
            "type": "candidate", "time": 1.0, "job": "j", "stage": "s",
            "task": 3, "machine": 0, "alignment": 0.5,
            "remaining_work": 2.0, "combined": 0.1, "remote": True,
        })

    def test_federation_spill_event_passes(self):
        # emitted by the sharded federation facade when a starved stage
        # is promoted to floating; must validate under --strict
        validate_event({
            "type": "federation_spill", "time": 90.0, "job": "j",
            "stage": "reduce", "home_shard": 0, "waited": 17.0,
        })

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"type": "nope"})

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_event({"type": "round", "time": 0.0})

    def test_bool_not_accepted_as_int(self):
        with pytest.raises(ValueError, match="bool"):
            validate_event({
                "type": "round", "time": 0.0, "machines": True,
                "placements": 0, "queue_depth": 0,
            })

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            validate_event({
                "type": "round", "time": 0.0, "machines": 1,
                "placements": 0, "queue_depth": 0, "extra": 1,
            })

    def test_optional_placement_scores_accepted(self):
        validate_event({
            "type": "placement", "time": 0.0, "job": "j", "stage": "s",
            "task": 0, "machine": 1, "via": "pack", "alignment": 0.2,
            "remaining_work": 1.0, "combined": 0.1,
        })

    def test_validate_jsonl_reports_bad_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"type":"round","time":0.0,"machines":1,"placements":0,'
            '"queue_depth":0}\n'
            "not json\n"
            '{"type":"bogus"}\n'
        )
        valid, errors = validate_jsonl(path)
        assert valid == 1
        assert len(errors) == 2
        assert "line 2" in errors[0] and "line 3" in errors[1]


# -- end-to-end wiring ----------------------------------------------------------
class TestTracedRun:
    def test_tetris_emits_documented_event_types(self):
        _, sink, _ = _traced_run()
        tally = sink.tally()
        for etype in (
            "round", "fairness_filter", "candidate", "fit_reject",
            "placement", "task_start",
        ):
            assert tally.get(etype, 0) > 0, etype
        for event in sink.events():
            validate_event(event)

    def test_placements_match_placement_log(self):
        engine, sink, _ = _traced_run()
        placed = [
            (e["job"], e["stage"], e["task"], e["machine"])
            for e in sink.events("placement")
        ]
        logged = [
            (t.job.name, t.stage.name, t.index, m)
            for (t, m, _time, _b) in engine.placement_log
        ]
        assert placed == logged

    def test_task_start_mirrors_placements(self):
        engine, sink, _ = _traced_run()
        assert len(sink.events("task_start")) == len(engine.placement_log)

    def test_engine_metrics_move(self):
        engine, _, reg = _traced_run()
        assert reg.get("repro_engine_rounds_total").value > 0
        assert reg.get("repro_engine_placements_total").value == len(
            engine.placement_log
        )
        assert reg.get("repro_engine_jobs_finished_total").value == len(
            engine.jobs
        )
        hist = reg.get("repro_engine_round_placements")
        assert hist.count == reg.get("repro_engine_rounds_total").value
        assert reg.get("repro_engine_sim_time_seconds").value == engine.now

    def test_tetris_cache_and_ledger_metrics(self):
        _, _, reg = _traced_run()
        cache = reg.get("repro_tetris_pack_cache_total")
        assert cache.labels(outcome="hit").value > 0
        assert cache.labels(outcome="miss").value > 0
        assert reg.get("repro_tetris_remote_grants_total").value > 0
        # drained run: no outstanding grants
        assert reg.get("repro_tetris_remote_ledger_machines").value == 0

    def test_estimator_fallback_counter(self):
        _, _, reg = _traced_run(
            scheduler=TetrisScheduler(),
            estimator=ProfilingEstimator(),
        )
        fam = reg.get("repro_estimator_estimates_total")
        assert fam.labels(source="fallback").value > 0

    def test_tracker_metrics(self):
        trace = _workload()
        cluster = Cluster(4, seed=0)
        jobs = materialize_trace(trace, cluster, seed=0)
        reg = Registry()
        engine = Engine(
            cluster,
            TetrisScheduler(),
            jobs,
            tracker=ResourceTracker(cluster),
            metrics=reg,
        )
        engine.run()
        assert reg.get("repro_tracker_reports_total").value > 0
        assert reg.get("repro_tracker_tracked_placements").value == 0

    def test_baseline_scheduler_gets_engine_events(self):
        _, sink, reg = _traced_run(scheduler=DRFScheduler())
        tally = sink.tally()
        assert tally.get("round", 0) > 0
        assert tally.get("task_start", 0) > 0
        assert reg.get("repro_engine_placements_total").value > 0
        for event in sink.events():
            validate_event(event)

    def test_reservation_events(self):
        _, sink, reg = _traced_run(
            scheduler=TetrisScheduler(
                TetrisConfig(starvation_timeout=20.0)
            ),
            trace_seed=7,
        )
        reservations = sink.events("reservation")
        if reservations:  # workload-dependent; metrics must agree
            assert (
                reg.get("repro_tetris_reservations_total").value
                == len(reservations)
            )
            via = [
                e for e in sink.events("placement")
                if e["via"] == "reservation"
            ]
            assert len(via) <= len(reservations)

    def test_disabled_observability_costs_nothing(self):
        trace = _workload()
        cluster = Cluster(4, seed=0)
        jobs = materialize_trace(trace, cluster, seed=0)
        engine = Engine(cluster, TetrisScheduler(), jobs)
        engine.run()
        assert engine.trace is None
        assert engine.metrics is None
        assert engine.scheduler.trace is None

    def test_fit_reject_dims_are_model_names(self):
        engine, sink, _ = _traced_run()
        names = set(engine.cluster.model.names)
        dims = {e["dim"] for e in sink.events("fit_reject")}
        assert dims and dims <= names


class TestSummarizer:
    def test_summary_of_real_log(self, tmp_path):
        trace = _workload()
        cluster = Cluster(4, seed=0)
        jobs = materialize_trace(trace, cluster, seed=0)
        path = tmp_path / "d.jsonl"
        with DecisionTrace(path) as sink:
            Engine(
                cluster, TetrisScheduler(), jobs, decision_trace=sink
            ).run()
        summary = summarize_decision_log(path)
        assert summary["invalid_events"] == 0
        assert summary["placements"] > 0
        assert summary["rounds"] > 0
        assert summary["alignment"]["count"] > 0
        assert any(r.startswith("fit:") for r in summary["rejections"])
        assert summary["placements_by_via"].get("pack", 0) > 0

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_decision_log(path)
        assert summary["events_total"] == 0
        assert summary["invalid_events"] == 0
        assert summary["placements"] == 0
        assert summary["rounds"] == 0
        assert summary["alignment"]["count"] == 0
        assert summary["rejections"] == {}

    def test_truncated_json_line_is_counted_not_fatal(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        good = json.dumps(
            {"type": "round", "time": 1.0, "machines": 4,
             "placements": 2, "queue_depth": 1}
        )
        path.write_text(good + "\n" + good[: len(good) // 2] + "\n")
        summary = summarize_decision_log(path)
        assert summary["events_total"] == 1
        assert summary["invalid_events"] == 1
        assert summary["rounds"] == 1
        assert any("line 2" in e for e in summary["errors"])

    def test_unknown_event_type_is_tallied_as_invalid(self, tmp_path):
        path = tmp_path / "unknown.jsonl"
        path.write_text(
            json.dumps({"type": "quantum_tunnel", "time": 0.0}) + "\n"
        )
        summary = summarize_decision_log(path)
        assert summary["invalid_events"] == 1
        assert summary["events_total"] == 0

    def test_missing_required_field_is_invalid(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        path.write_text(json.dumps({"type": "round", "time": 3.0}) + "\n")
        summary = summarize_decision_log(path)
        assert summary["invalid_events"] == 1
        assert summary["rounds"] == 0


# -- the Perfetto export --------------------------------------------------------
class TestLaneAssignment:
    def test_non_overlapping_share_lane(self):
        assert _assign_lanes([(0, 1), (1, 2), (2, 3)]) == [0, 0, 0]

    def test_overlapping_split_lanes(self):
        assert _assign_lanes([(0, 10), (1, 2), (3, 4)]) == [0, 1, 1]

    def test_no_overlap_within_any_lane(self):
        intervals = [(i * 0.5, i * 0.5 + 2.0) for i in range(20)]
        lanes = _assign_lanes(intervals)
        by_lane = {}
        for (start, end), lane in zip(intervals, lanes):
            for s, e in by_lane.get(lane, []):
                assert end <= s + 1e-12 or e <= start + 1e-12
            by_lane.setdefault(lane, []).append((start, end))


class TestChromeTrace:
    def test_event_shapes(self):
        engine, _, _ = _traced_run()
        events = chrome_trace_events(engine)
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        slices = [e for e in events if e["ph"] == "X"]
        task_slices = [e for e in slices if e["cat"] == "task"]
        placed = {
            t.task_id
            for job in engine.jobs
            for t in job.all_tasks()
            if t.finish_time is not None
        }
        assert len(task_slices) == len(placed)
        for s in slices:
            assert s["dur"] >= 0 and s["ts"] >= 0

    def test_rounds_match_round_log(self):
        engine, _, _ = _traced_run()
        instants = [
            e for e in chrome_trace_events(engine) if e["ph"] == "i"
        ]
        assert len(instants) == len(engine.round_log)

    def test_no_overlap_within_machine_lane(self):
        engine, _, _ = _traced_run()
        busy = {}
        for e in chrome_trace_events(engine):
            if e["ph"] != "X" or e["cat"] != "task":
                continue
            key = (e["pid"], e["tid"])
            for ts, end in busy.get(key, []):
                assert (
                    e["ts"] + e["dur"] <= ts + 1e-3
                    or end <= e["ts"] + 1e-3
                )
            busy.setdefault(key, []).append((e["ts"], e["ts"] + e["dur"]))

    def test_write_chrome_trace_file(self, tmp_path):
        engine, _, _ = _traced_run()
        path = tmp_path / "timeline.json"
        write_chrome_trace(engine, path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["machines"] == 4
        assert len(payload["traceEvents"]) > 0
