"""Bing-style deep-DAG trace generator tests (Table 1: large DAG depth)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.experiments.harness import ExperimentConfig, run_trace
from repro.schedulers.tetris import TetrisScheduler
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import BingTraceConfig, generate_bing_trace


@pytest.fixture(scope="module")
def trace():
    return generate_bing_trace(BingTraceConfig(num_jobs=40, seed=2))


class TestStructure:
    def test_job_count(self, trace):
        assert len(trace) == 40

    def test_depth_range(self, trace):
        depths = [len(j.stages) for j in trace]
        assert min(depths) >= 3
        assert max(depths) <= 7
        assert max(depths) > min(depths)  # actually varied

    def test_chains_are_connected(self, trace):
        for job in trace:
            names = {s.name for s in job.stages}
            for stage in job.stages[1:]:
                assert stage.parents
                assert all(p in names for p in stage.parents)

    def test_joins_present(self, trace):
        has_join = any(
            len(s.parents) >= 2 for j in trace for s in j.stages
        )
        assert has_join

    def test_leaf_stage_reads_blocks(self, trace):
        for job in trace:
            assert job.stages[0].input_kind == "blocks"
            assert all(
                s.input_kind == "shuffle" for s in job.stages[1:]
            )

    def test_recurring_templates(self, trace):
        templates = {j.template for j in trace}
        assert 1 < len(templates) <= 20


class TestMaterializedDags:
    def test_dag_depth_preserved(self, trace):
        cluster = Cluster(10)
        jobs = materialize_trace(trace[:5], cluster, seed=2)
        for trace_job, job in zip(trace[:5], jobs):
            assert job.dag.depth() <= len(trace_job.stages)
            assert len(job.dag) == len(trace_job.stages)

    def test_join_stage_blocked_by_both_parents(self, trace):
        cluster = Cluster(10)
        join_job = next(
            j for j in trace if any(len(s.parents) >= 2 for s in j.stages)
        )
        job = materialize_trace([join_job], cluster, seed=2)[0]
        join_stage = next(
            s for s in job.dag if len(s.parents) >= 2
        )
        assert not join_stage.is_released()


class TestEndToEnd:
    def test_runs_under_tetris(self):
        trace = generate_bing_trace(
            BingTraceConfig(num_jobs=6, arrival_horizon=200,
                            max_map_tasks=20, seed=5)
        )
        result = run_trace(
            trace, TetrisScheduler(),
            ExperimentConfig(num_machines=10, seed=5),
        )
        assert len(result.collector.jobs) == 6
