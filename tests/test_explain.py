"""Placement explainability (repro.obs.explain / ``repro explain``).

The load-bearing property: the narrative's numbers *are* the
scheduler's numbers.  A decision log from the scalar reference
scheduler (``vectorized=False``) is the ground truth here — every
placement's recorded decomposition must recombine into its combined
score under the configured weights, the winner must dominate its
reconstructed argmax pool, and the vectorized path must emit the exact
same decomposition stream.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.obs import (
    DecisionTrace,
    explain_task,
    explain_window,
    parse_task_ref,
    render_task_explanation,
    render_window_explanation,
)
from repro.obs.explain import iter_decisions
from repro.schedulers.tetris import TetrisConfig, TetrisScheduler
from repro.sim.engine import Engine, EngineConfig
from repro.workload.trace import materialize_trace
from repro.workload.tracegen import WorkloadSuiteConfig, generate_workload_suite


def _traced_run(
    tmp_path, seed=3, num_jobs=8, num_machines=4, vectorized=False,
    **config_kwargs,
):
    """Run the given scheduler flavour with a streaming decision log;
    returns (engine, config, log path)."""
    trace = generate_workload_suite(
        WorkloadSuiteConfig(
            num_jobs=num_jobs, task_scale=0.03,
            arrival_horizon=120.0, seed=seed,
        )
    )
    cluster = Cluster(num_machines, seed=0)
    jobs = materialize_trace(trace, cluster, seed=0)
    config = TetrisConfig(vectorized=vectorized, **config_kwargs)
    path = tmp_path / f"decisions-{seed}-{vectorized}.jsonl"
    with DecisionTrace(path) as sink:
        engine = Engine(
            cluster, TetrisScheduler(config), jobs,
            decision_trace=sink, config=EngineConfig(seed=0),
        )
        engine.run()
    return engine, config, path


def _log_placements(engine):
    return [
        (task.job.name, task.stage.name, task.index, machine_id, time)
        for task, machine_id, time, _booked in engine.placement_log
    ]


class TestParseTaskRef:
    def test_simple(self):
        assert parse_task_ref("job-3/map/7") == ("job-3", "map", 7)

    def test_job_names_may_contain_slashes(self):
        assert parse_task_ref("team/etl/reduce/0") == ("team/etl", "reduce", 0)

    @pytest.mark.parametrize("bad", ["noslashes", "job/1", ""])
    def test_too_few_components(self, bad):
        with pytest.raises(ValueError, match="job/stage/index"):
            parse_task_ref(bad)

    def test_non_integer_index(self):
        with pytest.raises(ValueError, match="integer"):
            parse_task_ref("job/map/seven")


class TestIterDecisions:
    def test_groups_reconstruct_the_argmax_pool(self, tmp_path):
        engine, _, path = _traced_run(tmp_path)
        decisions = [d for d in iter_decisions(path) if d["placement"]]
        assert len(decisions) == engine.num_placements
        for d in decisions:
            p = d["placement"]
            assert p["time"] == d["time"]
            assert p["machine"] == d["machine"]
            # the winner was itself a scored candidate of the group
            winners = [
                c
                for c in d["candidates"]
                if (c["job"], c["stage"], c["task"])
                == (p["job"], p["stage"], p["task"])
            ]
            assert len(winners) == 1
            assert winners[0]["combined"] == p["combined"]

    def test_groups_match_engine_placement_log(self, tmp_path):
        engine, _, path = _traced_run(tmp_path, seed=5)
        explained = [
            (
                d["placement"]["job"], d["placement"]["stage"],
                d["placement"]["task"], d["machine"], d["time"],
            )
            for d in iter_decisions(path)
            if d["placement"]
        ]
        assert explained == _log_placements(engine)


class TestScoreDecomposition:
    """The ISSUE acceptance property: the recorded decomposition is
    consistent with the scalar reference scheduler."""

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_terms_recombine_into_the_combined_score(self, tmp_path, seed):
        _, config, path = _traced_run(tmp_path, seed=seed)
        checked = 0
        for d in iter_decisions(path):
            p = d["placement"]
            if p is None or p.get("combined") is None:
                continue
            checked += 1
            # combined = alignment_weight * a  -  (m * epsilon) * remaining
            assert p["combined"] == (
                config.alignment_weight * p["alignment"] - p["srtf_term"]
            )
            assert p["srtf_term"] == pytest.approx(
                config.srtf_multiplier * p["epsilon"] * p["remaining_work"],
                rel=1e-12,
            )
        assert checked > 0

    @pytest.mark.parametrize("seed", [1, 5])
    def test_winner_dominates_its_pool(self, tmp_path, seed):
        _, _, path = _traced_run(tmp_path, seed=seed)
        margins_checked = 0
        for d in iter_decisions(path):
            p = d["placement"]
            if p is None or p.get("combined") is None:
                continue
            if d["barrier"] is not None:
                # the barrier filter narrows the argmax pool below the
                # full candidate list; dominance only holds inside it
                continue
            rivals = [
                c["combined"]
                for c in d["candidates"]
                if (c["job"], c["stage"], c["task"])
                != (p["job"], p["stage"], p["task"])
            ]
            assert p["pool"] == len(rivals) + 1
            if rivals:
                best_rival = max(rivals)
                assert p["combined"] >= best_rival
                assert p["margin"] == pytest.approx(
                    p["combined"] - best_rival, abs=1e-12
                )
                margins_checked += 1
            else:
                assert "margin" not in p
        assert margins_checked > 0

    def test_nondefault_weights_are_honored(self, tmp_path):
        _, config, path = _traced_run(
            tmp_path, seed=7, alignment_weight=0.5, srtf_multiplier=2.0
        )
        seen = 0
        for d in iter_decisions(path):
            p = d["placement"]
            if p is None or p.get("combined") is None:
                continue
            assert p["combined"] == (
                0.5 * p["alignment"] - p["srtf_term"]
            )
            seen += 1
        assert seen > 0

    def test_vectorized_path_emits_identical_decomposition(self, tmp_path):
        """The vectorized scheduler's explain stream is bit-identical to
        the scalar reference — the property the whole plane rests on."""

        def decomposition(path):
            return [
                tuple(
                    d["placement"].get(k)
                    for k in (
                        "job", "stage", "task", "machine", "time",
                        "alignment", "remaining_work", "combined",
                        "epsilon", "srtf_term", "margin", "pool", "remote",
                    )
                )
                for d in iter_decisions(path)
                if d["placement"]
            ]

        _, _, scalar_path = _traced_run(tmp_path, seed=11, vectorized=False)
        _, _, vec_path = _traced_run(tmp_path, seed=11, vectorized=True)
        scalar = decomposition(scalar_path)
        vectorized = decomposition(vec_path)
        assert scalar == vectorized
        assert len(scalar) > 0


class TestExplainTask:
    def test_placed_task_narrative(self, tmp_path):
        engine, config, path = _traced_run(tmp_path)
        job, stage, index, machine, time = _log_placements(engine)[0]
        explanation = explain_task(path, job, stage, index)
        assert explanation["found"]
        assert explanation["placed_at"] == time
        assert explanation["invalid_events"] == 0
        decision = explanation["decisions"][0]
        p = decision["placement"]
        assert p["machine"] == machine
        assert p["combined"] == (
            config.alignment_weight * p["alignment"] - p["srtf_term"]
        )
        # the task's own consideration at that instant reads "placed"
        placed_considerations = [
            c for c in explanation["considerations"]
            if c["outcome"] == "placed"
        ]
        assert len(placed_considerations) >= 1
        # competitors are sorted strongest first
        combined = [
            c["combined"] for c in decision["competitors"]
            if c.get("combined") is not None
        ]
        assert combined == sorted(combined, reverse=True)

    def test_wait_spans_first_consideration_to_placement(self, tmp_path):
        engine, _, path = _traced_run(tmp_path, seed=5)
        # a task from the last job placed: likely considered and beaten
        # (or rejected) a few times first
        job, stage, index, _, placed_time = _log_placements(engine)[-1]
        explanation = explain_task(path, job, stage, index)
        assert explanation["placed_at"] == placed_time
        if explanation["first_considered"] is not None:
            assert explanation["wait"] == pytest.approx(
                placed_time - explanation["first_considered"]
            )
            assert explanation["wait"] >= 0.0

    def test_fairness_cuts_precede_placement(self, tmp_path):
        engine, _, path = _traced_run(
            tmp_path, seed=3, fairness_knob=0.3
        )
        for job, stage, index, _, placed_time in _log_placements(engine)[:20]:
            explanation = explain_task(path, job, stage, index)
            for t in explanation["fairness_cuts"]["times"]:
                assert t <= placed_time

    def test_unknown_task_not_found(self, tmp_path):
        _, _, path = _traced_run(tmp_path)
        explanation = explain_task(path, "no-such-job", "map", 0)
        assert not explanation["found"]
        assert explanation["placed_at"] is None
        assert "no events" in render_task_explanation(explanation)

    def test_lost_considerations_record_the_winner(self, tmp_path):
        _, _, path = _traced_run(tmp_path, seed=9)
        lost = None
        for d in iter_decisions(path):
            p = d["placement"]
            if p is None:
                continue
            for c in d["candidates"]:
                if (c["job"], c["stage"], c["task"]) != (
                    p["job"], p["stage"], p["task"]
                ):
                    lost = (c, p)
                    break
            if lost:
                break
        assert lost is not None, "no contested iteration in this log"
        cand, winner = lost
        explanation = explain_task(
            path, cand["job"], cand["stage"], cand["task"]
        )
        entries = [
            e for e in explanation["considerations"]
            if e["time"] == cand["time"]
            and e["machine"] == cand["machine"]
            and e["outcome"] == "lost"
        ]
        assert entries
        entry = entries[0]
        assert entry["lost_to"]["job"] == winner["job"]
        assert entry["behind_by"] == pytest.approx(
            winner["combined"] - cand["combined"]
        )
        assert entry["behind_by"] >= 0.0 or explanation["found"]

    def test_explanation_is_json_serializable(self, tmp_path):
        engine, _, path = _traced_run(tmp_path)
        job, stage, index, _, _ = _log_placements(engine)[0]
        explanation = explain_task(path, job, stage, index)
        json.dumps(explanation)


class TestExplainWindow:
    def test_full_window_counts_every_placement(self, tmp_path):
        engine, _, path = _traced_run(tmp_path)
        summary = explain_window(path, 0.0, float("inf"))
        assert summary["placements"] == engine.num_placements
        assert summary["candidates_scored"] > 0
        assert sum(summary["placements_by_via"].values()) == (
            engine.num_placements
        )
        assert summary["margin"]["count"] <= summary["placements"]

    def test_empty_window(self, tmp_path):
        _, _, path = _traced_run(tmp_path)
        summary = explain_window(path, 1e9, 2e9)
        assert summary["placements"] == 0
        assert summary["margin"]["mean"] is None
        assert summary["pool_size_mean"] is None
        rendered = render_window_explanation(summary)
        assert "placements: 0" in rendered

    def test_windows_partition_the_run(self, tmp_path):
        engine, _, path = _traced_run(tmp_path, seed=5)
        times = [t for *_rest, t in _log_placements(engine)]
        mid = sorted(times)[len(times) // 2]
        eps = 1e-9
        left = explain_window(path, 0.0, mid)
        right = explain_window(path, mid + eps, float("inf"))
        assert left["placements"] + right["placements"] == len(times)


class TestRendering:
    def test_narrative_contains_the_decomposition(self, tmp_path):
        engine, _, path = _traced_run(tmp_path)
        # find a placement that won a contested pool so the margin and
        # competitor lines render too
        target = None
        for d in iter_decisions(path):
            p = d["placement"]
            if p is not None and p.get("margin") is not None:
                target = p
                break
        assert target is not None
        explanation = explain_task(
            path, target["job"], target["stage"], target["task"]
        )
        text = render_task_explanation(explanation)
        assert "alignment term" in text
        assert "srtf term" in text
        assert "combined score" in text
        assert "won by margin" in text

    def test_window_rollup_renders(self, tmp_path):
        _, _, path = _traced_run(tmp_path)
        text = render_window_explanation(
            explain_window(path, 0.0, float("inf"))
        )
        assert text.startswith("window t=")
        assert "placements:" in text
